//! Coarse STS detection by lag-16 autocorrelation.
//!
//! The fine cross-correlator of Fig 4 matches the received samples
//! against stored preamble values, which makes its peak proportional
//! to the (unknown) channel gain. A fading channel can therefore bury
//! the true peak below correlations with payload data — particularly
//! in MIMO, where four antennas transmit payload simultaneously but
//! only TX 0 sends the STS.
//!
//! The classical remedy (Schmidl–Cox style, and what practical
//! receivers put in front of a cross-correlator) exploits the STS's
//! 16-sample periodicity with a *normalized* autocorrelation: the
//! metric `|Σ r[n+k]·r*[n+k+16]| / Σ |r[n+k+16]|²` is ≈1 inside the
//! STS regardless of channel gain, and small over data or noise. Its
//! plateau ends where the STS ends — which is the LTS start the fine
//! correlator then pins down exactly.

use mimo_fixed::{CQ15, Cf64};

/// Autocorrelation lag: the STS short-symbol period.
const LAG: usize = 16;

/// Correlation window length (two short symbols).
const WINDOW: usize = 32;

/// Minimum plateau run to accept (the STS supports ~112 positions).
const MIN_RUN: usize = 64;

/// Plateau threshold on the normalized metric.
const THRESHOLD: f64 = 0.70;

/// Minimum per-window energy (rejects the all-zero idle channel).
const MIN_ENERGY: f64 = 1e-4;

/// Result of coarse STS detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoarseSts {
    /// Estimated index of the first sample after the STS (≈ LTS
    /// start), accurate to roughly ±one short symbol (the plateau
    /// decays gradually as the window slides off the STS).
    pub sts_end: usize,
    /// Start of the detected plateau (≈ burst start).
    pub plateau_start: usize,
}

/// Detects the STS across one or more receive antennas by its
/// periodicity, combining all antennas for diversity (the metric sums
/// every antenna's correlation and energy, so a single faded path
/// cannot defeat it).
///
/// Returns `None` when no plateau of sufficient length exists.
///
/// # Examples
///
/// ```
/// use mimo_fft::FixedFft;
/// use mimo_ofdm::{preamble, SubcarrierMap};
/// use mimo_sync::coarse_sts_end;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fft = FixedFft::new(64)?;
/// let map = SubcarrierMap::new(64)?;
/// let mut burst = preamble::sts_time(&fft, &map, 0.5)?;
/// burst.extend(preamble::lts_time(&fft, &map, 0.5)?);
/// let coarse = coarse_sts_end(&[burst]).expect("STS present");
/// assert!((coarse.sts_end as i64 - 160).unsigned_abs() <= 16);
/// # Ok(())
/// # }
/// ```
pub fn coarse_sts_end<S: AsRef<[CQ15]>>(streams: &[S]) -> Option<CoarseSts> {
    let len = streams.iter().map(|s| s.as_ref().len()).min()?;
    if len < WINDOW + LAG {
        return None;
    }
    let positions = len - WINDOW - LAG;

    // Sliding sums per antenna, combined: O(n) per antenna.
    let mut best: Option<CoarseSts> = None;
    let mut run_start: Option<usize> = None;

    // Precompute per-position lag products and energies incrementally.
    let mut corr = Cf64::ZERO;
    let mut energy = 0.0f64;
    let term = |i: usize, n: usize, streams: &[S]| -> (Cf64, f64) {
        let mut c = Cf64::ZERO;
        let mut e = 0.0;
        for s in streams {
            let s = s.as_ref();
            let a = Cf64::from_fixed(s[n + i]);
            let b = Cf64::from_fixed(s[n + i + LAG]);
            c += a * b.conj();
            e += b.norm_sqr();
        }
        (c, e)
    };
    // Initialize window at n = 0.
    for i in 0..WINDOW {
        let (c, e) = term(i, 0, streams);
        corr += c;
        energy += e;
    }

    for n in 0..positions {
        let plateau = energy > MIN_ENERGY * WINDOW as f64
            && corr.norm_sqr() >= (THRESHOLD * energy) * (THRESHOLD * energy);
        match (plateau, run_start) {
            (true, None) => run_start = Some(n),
            (false, Some(start)) => {
                if n - start >= MIN_RUN && best.is_none() {
                    best = Some(CoarseSts {
                        sts_end: n - 1 + WINDOW + LAG,
                        plateau_start: start,
                    });
                }
                run_start = None;
            }
            _ => {}
        }
        // Slide the window to n + 1.
        let (c_old, e_old) = term(0, n, streams);
        corr -= c_old;
        energy -= e_old;
        let (c_new, e_new) = term(WINDOW - 1, n + 1, streams);
        corr += c_new;
        energy += e_new;
        if energy < 0.0 {
            energy = 0.0;
        }
    }
    // A plateau running to the end of the buffer.
    if let (Some(start), None) = (run_start, best) {
        if positions - start >= MIN_RUN {
            best = Some(CoarseSts {
                sts_end: positions - 1 + WINDOW + LAG,
                plateau_start: start,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_fft::FixedFft;
    use mimo_ofdm::{preamble, SubcarrierMap};

    fn preamble_burst() -> Vec<CQ15> {
        let fft = FixedFft::new(64).unwrap();
        let map = SubcarrierMap::new(64).unwrap();
        let mut burst = preamble::sts_time(&fft, &map, 0.5).unwrap();
        burst.extend(preamble::lts_time(&fft, &map, 0.5).unwrap());
        burst
    }

    #[test]
    fn finds_sts_end_on_clean_burst() {
        let burst = preamble_burst();
        let coarse = coarse_sts_end(&[burst]).expect("detect");
        assert!(
            (coarse.sts_end as i64 - 160).unsigned_abs() <= 16,
            "sts_end {}",
            coarse.sts_end
        );
        assert!(coarse.plateau_start <= 8);
    }

    #[test]
    fn offset_shifts_estimate() {
        let burst = preamble_burst();
        for delay in [50usize, 333] {
            let mut shifted = vec![CQ15::ZERO; delay];
            shifted.extend_from_slice(&burst);
            let coarse = coarse_sts_end(&[shifted]).expect("detect");
            assert!(
                (coarse.sts_end as i64 - (160 + delay) as i64).unsigned_abs() <= 16,
                "delay {delay}: sts_end {}",
                coarse.sts_end
            );
        }
    }

    #[test]
    fn gain_invariant() {
        let burst = preamble_burst();
        // Scale down 8x: metric is normalized, detection must hold.
        let faded: Vec<CQ15> = burst.iter().map(|s| s.shr_round(3)).collect();
        let coarse = coarse_sts_end(&[faded]).expect("detect despite fade");
        assert!((coarse.sts_end as i64 - 160).unsigned_abs() <= 16);
    }

    #[test]
    fn rejects_noise_and_silence() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let noise: Vec<CQ15> = (0..2000)
            .map(|_| CQ15::from_f64(rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2)))
            .collect();
        assert!(coarse_sts_end(&[noise]).is_none(), "noise must not form a plateau");
        let silence = vec![CQ15::ZERO; 2000];
        assert!(coarse_sts_end(&[silence]).is_none(), "silence must not detect");
    }

    #[test]
    fn multi_antenna_diversity() {
        let burst = preamble_burst();
        // Antenna 0 deeply faded, antenna 1 healthy: combined metric
        // still detects.
        let faded: Vec<CQ15> = burst.iter().map(|s| s.shr_round(6)).collect();
        let coarse = coarse_sts_end(&[faded, burst]).expect("diversity detect");
        assert!((coarse.sts_end as i64 - 160).unsigned_abs() <= 16);
    }

    #[test]
    fn short_input_returns_none() {
        assert!(coarse_sts_end(&[vec![CQ15::ZERO; 10]]).is_none());
        assert!(coarse_sts_end::<Vec<CQ15>>(&[]).is_none());
    }
}
