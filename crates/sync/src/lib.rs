//! The time synchroniser (Fig 4 of the paper).
//!
//! "The time synchronizer must locate the end of the STS frame and the
//! start of the LTS frame. The circuit is preloaded with the complex
//! conjugate values of the last 16 STS symbols and the first 16 LTS
//! symbols. ... Every clock cycle, a sliding window of 32 consecutive
//! data samples are multiplied with the 32 pre-stored preamble values
//! and summed. 32 parallel complex multipliers are required along with
//! a pipelined adder structure. The magnitude of the resulting complex
//! value is calculated \[by\] a CORDIC block ... The CORDIC output is
//! compared with a stored threshold value. ... The time synchronizer is
//! implemented on the FPGA using 128 18-bit multipliers." (§IV.B)
//!
//! [`TimeSynchronizer`] is the streaming model: push one sample per
//! clock; a [`SyncEvent`] fires when the correlation magnitude crosses
//! the threshold, carrying the located LTS start. [`CircularBuffer`]
//! models the input buffer "large enough to handle time synchronizer
//! latency".
//!
//! Burst acquisition in front of the correlator is chunk-driven:
//! [`CoarseTracker`] is the online lag-16 STS plateau detector
//! (gain-invariant, all antennas combined) and [`SyncTracker`]
//! composes it with the fine cross-correlator into a
//! consume-any-chunk-size state machine. The whole-capture entry point
//! [`coarse_sts_end`] is a thin wrapper over the tracker, so batch and
//! streaming receivers share one acquisition implementation with
//! bit-identical results.

mod buffer;
mod coarse;
mod correlator;
mod tracker;

pub use buffer::CircularBuffer;
pub use coarse::{coarse_sts_end, CoarseSts};
pub use correlator::{SyncEvent, SyncError, TimeSynchronizer};
pub use tracker::{CoarseTracker, SyncTracker};

/// Number of correlator taps (16 STS tail + 16 LTS head samples).
pub const CORRELATOR_TAPS: usize = 32;

/// Default detection threshold as a fraction of the ideal
/// autocorrelation peak.
///
/// The STS is 16-periodic, so while the short training sequence is
/// still in flight the first 16 taps of the correlator match on every
/// period: those partial alignments measure 0.53 of the true peak.
/// The "stored threshold value (representing the final STS to LTS
/// transition peak)" must therefore sit above 0.53 with margin — 0.7
/// rejects both the periodic partials and strong noise (measured max
/// 0.57 of peak at 1.5x preamble amplitude).
pub const DEFAULT_THRESHOLD_FACTOR: f64 = 0.7;

/// Real 18-bit multipliers consumed by the correlator: 32 complex
/// multipliers × 4 real multiplies each — the paper's "128 18-bit
/// multipliers".
pub const CORRELATOR_MULTIPLIERS: usize = 4 * CORRELATOR_TAPS;
