//! The 32-tap sliding correlator, CORDIC magnitude and threshold FSM.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use mimo_cordic::Cordic;
use mimo_fixed::{CFx, CQ15, Q16};

use crate::CORRELATOR_TAPS;

/// Errors from synchroniser construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SyncError {
    /// The reference must contain exactly 32 taps.
    BadTapCount(usize),
    /// Threshold factor must lie in (0, 1].
    BadThreshold(f64),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::BadTapCount(n) => {
                write!(f, "expected {CORRELATOR_TAPS} correlator taps, got {n}")
            }
            SyncError::BadThreshold(t) => write!(f, "threshold factor {t} outside (0, 1]"),
        }
    }
}

impl Error for SyncError {}

/// A detected STS→LTS transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncEvent {
    /// Stream index of the sample that produced the peak (the newest
    /// sample in the matching window).
    pub peak_index: usize,
    /// Stream index of the first LTS sample, derived from the peak:
    /// the window holds 16 STS then 16 LTS samples, so the LTS begins
    /// 15 samples before the peak.
    pub lts_start: usize,
    /// Correlation magnitude at the peak (CORDIC output).
    pub magnitude: Q16,
}

/// The streaming time synchroniser.
///
/// # Examples
///
/// ```
/// use mimo_fft::FixedFft;
/// use mimo_ofdm::{preamble, SubcarrierMap};
/// use mimo_sync::TimeSynchronizer;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fft = FixedFft::new(64)?;
/// let map = SubcarrierMap::new(64)?;
/// let taps = preamble::sync_reference(&fft, &map, 0.5)?;
/// let mut sync = TimeSynchronizer::new(taps, mimo_sync::DEFAULT_THRESHOLD_FACTOR)?;
///
/// // Feed STS then LTS; detection fires at the boundary.
/// let mut burst = preamble::sts_time(&fft, &map, 0.5)?;
/// let lts_start = burst.len();
/// burst.extend(preamble::lts_time(&fft, &map, 0.5)?);
/// let mut found = None;
/// for (i, &s) in burst.iter().enumerate() {
///     if let Some(event) = sync.push(s) {
///         found = Some(event);
///         break;
///     }
///     let _ = i;
/// }
/// assert_eq!(found.unwrap().lts_start, lts_start);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimeSynchronizer {
    /// Pre-stored conjugated reference (16 STS tail + 16 LTS head).
    taps: Vec<CQ15>,
    /// 32-stage shift register of incoming samples (newest at back).
    window: VecDeque<CQ15>,
    cordic: Cordic,
    /// Detection threshold on the correlation magnitude.
    threshold: Q16,
    /// Samples consumed so far.
    position: usize,
    /// Latched detection: the synchroniser locks after the first event
    /// ("once the signal is greater than the threshold value, the
    /// system assumes the start of a frame has been located").
    locked: Option<SyncEvent>,
}

impl TimeSynchronizer {
    /// Creates a synchroniser from the 32 conjugated reference taps
    /// (see `mimo_ofdm::preamble::sync_reference`) and a threshold
    /// factor in (0, 1] relative to the ideal autocorrelation peak.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] on a wrong tap count or threshold.
    pub fn new(taps: Vec<CQ15>, threshold_factor: f64) -> Result<Self, SyncError> {
        if taps.len() != CORRELATOR_TAPS {
            return Err(SyncError::BadTapCount(taps.len()));
        }
        if !(threshold_factor > 0.0 && threshold_factor <= 1.0) {
            return Err(SyncError::BadThreshold(threshold_factor));
        }
        // Ideal peak: sum over |ref_k|^2 (window == reference).
        let peak: f64 = taps
            .iter()
            .map(|&t| {
                let (re, im) = t.to_f64();
                re * re + im * im
            })
            .sum();
        let threshold = Q16::from_f64(peak * threshold_factor);
        Ok(Self {
            taps,
            window: VecDeque::with_capacity(CORRELATOR_TAPS),
            cordic: Cordic::new(),
            threshold,
            position: 0,
            locked: None,
        })
    }

    /// The detection threshold (CORDIC-magnitude domain).
    pub fn threshold(&self) -> Q16 {
        self.threshold
    }

    /// The latched detection, if any.
    pub fn locked(&self) -> Option<SyncEvent> {
        self.locked
    }

    /// Total samples consumed.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Re-arms the synchroniser for the next burst (back to idle).
    pub fn reset(&mut self) {
        self.window.clear();
        self.position = 0;
        self.locked = None;
    }

    /// Pushes one sample (one clock). Returns a [`SyncEvent`] on the
    /// clock where the correlation magnitude first crosses the
    /// threshold; afterwards the synchroniser stays locked and returns
    /// `None` until [`TimeSynchronizer::reset`].
    pub fn push(&mut self, sample: CQ15) -> Option<SyncEvent> {
        let index = self.position;
        self.position += 1;
        self.window.push_back(sample);
        if self.window.len() > CORRELATOR_TAPS {
            self.window.pop_front();
        }
        if self.locked.is_some() || self.window.len() < CORRELATOR_TAPS {
            return None;
        }
        let magnitude = self.correlate();
        if magnitude >= self.threshold {
            let event = SyncEvent {
                peak_index: index,
                lts_start: index - 15,
                magnitude,
            };
            self.locked = Some(event);
            return Some(event);
        }
        None
    }

    /// Convenience: runs the synchroniser over a whole burst and
    /// returns the first event.
    pub fn detect(&mut self, burst: &[CQ15]) -> Option<SyncEvent> {
        for &s in burst {
            if let Some(event) = self.push(s) {
                return Some(event);
            }
        }
        None
    }

    /// Scans a whole stored burst and returns the global correlation
    /// maximum, ignoring the threshold.
    ///
    /// A fading channel scales the correlation peak by the (unknown)
    /// path gain, which can defeat a fixed threshold; a receiver with
    /// the burst buffered (the paper's circular input buffer) can
    /// instead take the maximum. Returns `None` for bursts shorter
    /// than the correlation window or with zero correlation
    /// everywhere. Does not alter the streaming lock state.
    pub fn scan_peak(&self, burst: &[CQ15]) -> Option<SyncEvent> {
        self.scan_peak_window(burst, 0, burst.len())
    }

    /// [`TimeSynchronizer::scan_peak`] restricted to peak positions in
    /// `lo..hi` — the fine-timing stage behind a coarse STS detector
    /// (see [`coarse_sts_end`](crate::coarse_sts_end)): the coarse
    /// stage is channel-gain invariant but only ±half-symbol accurate;
    /// this pins the boundary to the sample.
    pub fn scan_peak_window(&self, burst: &[CQ15], lo: usize, hi: usize) -> Option<SyncEvent> {
        if burst.len() < CORRELATOR_TAPS {
            return None;
        }
        let mut scratch = Self {
            taps: self.taps.clone(),
            window: VecDeque::with_capacity(CORRELATOR_TAPS),
            cordic: self.cordic.clone(),
            threshold: Q16::ZERO,
            position: 0,
            locked: None,
        };
        let hi = hi.min(burst.len());
        let mut best: Option<SyncEvent> = None;
        // Prime the shift register so position `lo` is evaluable.
        let start = lo.saturating_sub(CORRELATOR_TAPS - 1);
        for (offset, &s) in burst[start..hi].iter().enumerate() {
            let index = start + offset;
            scratch.window.push_back(s);
            if scratch.window.len() > CORRELATOR_TAPS {
                scratch.window.pop_front();
            }
            if scratch.window.len() < CORRELATOR_TAPS || index < lo {
                continue;
            }
            let magnitude = scratch.correlate();
            if magnitude.raw() > 0 && best.is_none_or(|b| magnitude > b.magnitude) {
                best = Some(SyncEvent {
                    peak_index: index,
                    lts_start: index - 15,
                    magnitude,
                });
            }
        }
        best
    }

    /// The 32 parallel complex multipliers and pipelined adder tree,
    /// followed by the CORDIC magnitude calculation.
    fn correlate(&self) -> Q16 {
        let mut acc = CFx::<15>::ZERO;
        for (&x, &t) in self.window.iter().zip(self.taps.iter()) {
            // Taps are pre-conjugated; plain multiply is correlation.
            acc += x * t;
        }
        let wide: CFx<16> = acc.convert();
        self.cordic.magnitude(wide.re, wide.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_fft::FixedFft;
    use mimo_ofdm::{preamble, SubcarrierMap};

    fn setup() -> (Vec<CQ15>, usize, TimeSynchronizer) {
        let fft = FixedFft::new(64).unwrap();
        let map = SubcarrierMap::new(64).unwrap();
        let taps = preamble::sync_reference(&fft, &map, 0.5).unwrap();
        let sync = TimeSynchronizer::new(taps, crate::DEFAULT_THRESHOLD_FACTOR).unwrap();
        let mut burst = preamble::sts_time(&fft, &map, 0.5).unwrap();
        let lts_start = burst.len();
        burst.extend(preamble::lts_time(&fft, &map, 0.5).unwrap());
        (burst, lts_start, sync)
    }

    #[test]
    fn detects_exact_boundary_on_clean_signal() {
        let (burst, lts_start, mut sync) = setup();
        let event = sync.detect(&burst).expect("must detect");
        assert_eq!(event.lts_start, lts_start);
        assert_eq!(event.peak_index, lts_start + 15);
    }

    #[test]
    fn detection_survives_timing_offset() {
        let (burst, lts_start, mut sync) = setup();
        for delay in [1usize, 13, 100] {
            sync.reset();
            let mut shifted = vec![CQ15::ZERO; delay];
            shifted.extend_from_slice(&burst);
            let event = sync.detect(&shifted).expect("must detect");
            assert_eq!(event.lts_start, lts_start + delay, "delay {delay}");
        }
    }

    #[test]
    fn no_false_alarm_on_noise_only() {
        use rand::Rng;
        use rand_chacha::rand_core::SeedableRng;
        let (_, _, mut sync) = setup();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        // Noise 1.5x stronger than the preamble's peak amplitude must
        // not cross the default threshold (measured max ~0.57 of peak).
        let noise: Vec<CQ15> = (0..4000)
            .map(|_| {
                CQ15::from_f64(rng.gen_range(-0.15..0.15), rng.gen_range(-0.15..0.15))
            })
            .collect();
        assert!(sync.detect(&noise).is_none());
    }

    #[test]
    fn locks_once_until_reset() {
        let (burst, _, mut sync) = setup();
        let mut events = 0;
        for _ in 0..3 {
            for &s in &burst {
                if sync.push(s).is_some() {
                    events += 1;
                }
            }
        }
        assert_eq!(events, 1, "must latch after first detection");
        sync.reset();
        assert!(sync.detect(&burst).is_some(), "re-armed after reset");
    }

    #[test]
    fn multiplier_budget_matches_paper() {
        assert_eq!(crate::CORRELATOR_MULTIPLIERS, 128);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(matches!(
            TimeSynchronizer::new(vec![CQ15::ZERO; 16], 0.5),
            Err(SyncError::BadTapCount(16))
        ));
        assert!(matches!(
            TimeSynchronizer::new(vec![CQ15::ZERO; 32], 0.0),
            Err(SyncError::BadThreshold(_))
        ));
    }
}
