//! Chunk-driven burst acquisition: the online form of the two-stage
//! (coarse STS → fine cross-correlator) synchroniser.
//!
//! The batch receiver sees a whole capture at once and can run
//! [`coarse_sts_end`](crate::coarse_sts_end) followed by
//! [`TimeSynchronizer::scan_peak_window`] over stored samples. A
//! streaming receiver sees arbitrary-size sample chunks — one sample,
//! a DMA page, anything in between — and must carry the correlator
//! state across chunk boundaries. [`CoarseTracker`] and
//! [`SyncTracker`] are those online forms, and the batch entry points
//! are thin wrappers over them, so there is exactly **one**
//! implementation of the acquisition arithmetic. Feeding any split of
//! a capture through the trackers is bit-identical to the whole-capture
//! scan: every floating-point accumulation happens in the same order.
//!
//! ## The chunk-boundary off-by-one
//!
//! The whole-capture loop evaluates plateau position `n` only once
//! sample `n + 48` exists (its loop bound is `len - WINDOW - LAG`,
//! one position short of what the sliding sums alone would allow,
//! because the slide to `n + 1` touches sample `n + 48`). A naive
//! streaming port evaluates `n` as soon as sample `n + 47` arrives —
//! one sample *earlier* — which shifts every run-length comparison and
//! end-of-stream plateau rule by one and breaks bit-identity for
//! captures whose plateau touches the buffer edge. [`CoarseTracker`]
//! therefore defers evaluation of position `n` to the arrival of
//! sample `n + 48`, exactly mirroring the batch loop; the
//! `chunked_equals_batch_*` tests pin this.

use mimo_fixed::{CQ15, Cf64};

use crate::coarse::{CoarseSts, LAG, MIN_ENERGY, MIN_RUN, THRESHOLD, WINDOW};
use crate::correlator::{SyncError, SyncEvent, TimeSynchronizer};

/// Ring depth for the coarse sliding sums: the slide at position `n`
/// touches samples `n..=n + WINDOW + LAG`, so 49 columns must stay
/// addressable. A power of two keeps the index a mask.
const RING: usize = 64;

/// Trailing history (samples per antenna) the fine stage may reach
/// back for: the scan window starts at `sts_end - 48` and primes the
/// 32-tap shift register from 31 samples before that.
const FINE_REACH: usize = WINDOW + LAG + crate::CORRELATOR_TAPS;

/// History retained per antenna while searching, with compaction slack
/// so the buffers stop growing at steady state.
const KEEP: usize = 2 * FINE_REACH;

/// The online coarse STS detector: the lag-16 plateau tracker of
/// [`coarse_sts_end`](crate::coarse_sts_end), consuming one
/// multi-antenna sample column at a time.
///
/// Positions are **local**: column 0 is the first sample pushed after
/// construction or [`CoarseTracker::reset`].
#[derive(Debug, Clone)]
pub struct CoarseTracker {
    n_ant: usize,
    /// Column ring: sample `j` of antenna `a` lives at
    /// `ring[(j & (RING-1)) * n_ant + a]`.
    ring: Vec<CQ15>,
    /// Columns ingested so far (the next column's local index).
    count: usize,
    corr: Cf64,
    energy: f64,
    run_start: Option<usize>,
    best: Option<CoarseSts>,
}

impl CoarseTracker {
    /// Creates a tracker combining `n_antennas` receive streams (the
    /// metric sums every antenna's correlation and energy, as the
    /// batch detector does).
    pub fn new(n_antennas: usize) -> Self {
        Self {
            n_ant: n_antennas.max(1),
            ring: vec![CQ15::ZERO; RING * n_antennas.max(1)],
            count: 0,
            corr: Cf64::ZERO,
            energy: 0.0,
            run_start: None,
            best: None,
        }
    }

    /// Re-arms the tracker: the next pushed column is local position 0.
    pub fn reset(&mut self) {
        self.count = 0;
        self.corr = Cf64::ZERO;
        self.energy = 0.0;
        self.run_start = None;
        self.best = None;
    }

    /// Columns ingested since construction/reset.
    pub fn samples_seen(&self) -> usize {
        self.count
    }

    /// The latched detection, if any.
    pub fn detection(&self) -> Option<CoarseSts> {
        self.best
    }

    #[inline]
    fn col(&self, j: usize, a: usize) -> CQ15 {
        self.ring[(j & (RING - 1)) * self.n_ant + a]
    }

    /// The lag product and energy of the sample pair `(p, p + LAG)`,
    /// summed over antennas — `term(i, n)` of the batch detector with
    /// `p = n + i`.
    #[inline]
    fn term(&self, p: usize) -> (Cf64, f64) {
        let mut c = Cf64::ZERO;
        let mut e = 0.0;
        for a in 0..self.n_ant {
            let x = Cf64::from_fixed(self.col(p, a));
            let y = Cf64::from_fixed(self.col(p + LAG, a));
            c += x * y.conj();
            e += y.norm_sqr();
        }
        (c, e)
    }

    /// Plateau bookkeeping at position `n`; `true` when the first
    /// qualifying plateau just closed (the detection is latched).
    fn evaluate(&mut self, n: usize) -> bool {
        let plateau = self.energy > MIN_ENERGY * WINDOW as f64
            && self.corr.norm_sqr() >= (THRESHOLD * self.energy) * (THRESHOLD * self.energy);
        match (plateau, self.run_start) {
            (true, None) => self.run_start = Some(n),
            (false, Some(start)) => {
                if n - start >= MIN_RUN && self.best.is_none() {
                    self.best = Some(CoarseSts {
                        sts_end: n - 1 + WINDOW + LAG,
                        plateau_start: start,
                    });
                    return true;
                }
                self.run_start = None;
            }
            _ => {}
        }
        false
    }

    /// Pushes one sample column (`column[a]` = antenna `a`'s sample).
    /// Returns the detection on the clock where the first plateau of
    /// sufficient length closes; the tracker then stays latched until
    /// [`CoarseTracker::reset`].
    ///
    /// # Panics
    ///
    /// Panics when `column.len()` differs from the antenna count.
    pub fn push_column(&mut self, column: &[CQ15]) -> Option<CoarseSts> {
        assert_eq!(column.len(), self.n_ant, "coarse tracker column width");
        let j = self.count;
        let base = (j & (RING - 1)) * self.n_ant;
        self.ring[base..base + self.n_ant].copy_from_slice(column);
        self.count += 1;
        if self.best.is_some() {
            return None;
        }
        if j + 1 == WINDOW + LAG {
            // All samples of the first window present: build the
            // initial sums exactly as the batch loop does.
            for i in 0..WINDOW {
                let (c, e) = self.term(i);
                self.corr += c;
                self.energy += e;
            }
        } else if j >= WINDOW + LAG {
            // Sample n + 48 just arrived: evaluate position n, *then*
            // slide the window — the batch evaluation order (see the
            // module docs on the off-by-one this prevents).
            let n = j - (WINDOW + LAG);
            let fired = self.evaluate(n);
            let (c_old, e_old) = self.term(n);
            self.corr -= c_old;
            self.energy -= e_old;
            let (c_new, e_new) = self.term(n + WINDOW);
            self.corr += c_new;
            self.energy += e_new;
            if self.energy < 0.0 {
                self.energy = 0.0;
            }
            if fired {
                return self.best;
            }
        }
        None
    }

    /// Applies the end-of-stream rule without consuming more samples:
    /// a plateau still open after the last evaluable position is
    /// accepted if long enough — the batch detector's
    /// plateau-runs-to-the-buffer-edge branch. Idempotent and
    /// non-destructive.
    pub fn finish(&self) -> Option<CoarseSts> {
        if self.best.is_some() {
            return self.best;
        }
        if self.count < WINDOW + LAG {
            return None;
        }
        let positions = self.count - WINDOW - LAG;
        if let Some(start) = self.run_start {
            if positions - start >= MIN_RUN {
                return Some(CoarseSts {
                    sts_end: positions - 1 + WINDOW + LAG,
                    plateau_start: start,
                });
            }
        }
        None
    }
}

/// Acquisition state of a [`SyncTracker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrackState {
    /// Running the coarse plateau detector.
    Searching,
    /// Coarse fired at `sts_end`; buffering until the fine scan window
    /// `[sts_end - 48, sts_end + 48)` is fully covered.
    FineWait { sts_end: usize },
    /// A detection was delivered (or the stream was flushed); the
    /// tracker is idle until [`SyncTracker::rearm_at`].
    Locked,
}

/// The chunk-driven two-stage synchroniser: an online
/// [`CoarseTracker`] feeding the 32-tap fine cross-correlator scanned
/// in a ±48-sample window around the coarse estimate — the exact
/// acquisition sequence of the batch receiver, consuming
/// arbitrary-size sample chunks and carrying all state (sliding sums,
/// plateau run, trailing sample history) across chunk boundaries.
///
/// All reported indices are **absolute** stream positions (the first
/// sample ever pushed is index 0; [`SyncTracker::rearm_at`] re-bases
/// the search without disturbing absolute numbering).
///
/// # Examples
///
/// ```
/// use mimo_fft::FixedFft;
/// use mimo_ofdm::{preamble, SubcarrierMap};
/// use mimo_sync::SyncTracker;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fft = FixedFft::new(64)?;
/// let map = SubcarrierMap::new(64)?;
/// let taps = preamble::sync_reference(&fft, &map, 0.5)?;
/// let mut tracker = SyncTracker::new(taps, mimo_sync::DEFAULT_THRESHOLD_FACTOR, 1)?;
///
/// let mut burst = preamble::sts_time(&fft, &map, 0.5)?;
/// let lts_start = burst.len();
/// burst.extend(preamble::lts_time(&fft, &map, 0.5)?);
///
/// // Feed the burst in ragged chunks; the event carries absolute indices.
/// let mut found = None;
/// for chunk in burst.chunks(7) {
///     if let Some(event) = tracker.push_chunks(&[chunk]) {
///         found = Some(event);
///         break;
///     }
/// }
/// let event = found.or_else(|| tracker.flush()).expect("preamble located");
/// assert_eq!(event.lts_start, lts_start);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SyncTracker {
    /// Fine-correlator prototype (taps + threshold); scans are `&self`.
    scan: TimeSynchronizer,
    coarse: CoarseTracker,
    n_ant: usize,
    /// Absolute index where the current coarse search began.
    origin: usize,
    /// Absolute samples ingested (next sample's index).
    ingested: usize,
    /// Trailing per-antenna history backing the fine scan. A caller
    /// holding its own sample buffers (the streaming receiver does)
    /// stores these ~`2·KEEP` samples twice; the duplication is
    /// bounded and keeps the tracker usable standalone against any
    /// sample source.
    hist: Vec<Vec<CQ15>>,
    /// Absolute index of `hist[a][0]`.
    hist_base: usize,
    state: TrackState,
    /// The last delivered detection.
    locked: Option<SyncEvent>,
    /// Column assembly scratch (one sample per antenna).
    column: Vec<CQ15>,
}

impl SyncTracker {
    /// Creates a tracker from the 32 conjugated fine-correlator taps
    /// (see `mimo_ofdm::preamble::sync_reference`), the fine threshold
    /// factor, and the number of receive antennas to combine.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError`] on a wrong tap count or threshold.
    pub fn new(
        taps: Vec<CQ15>,
        threshold_factor: f64,
        n_antennas: usize,
    ) -> Result<Self, SyncError> {
        Ok(Self::from_correlator(
            TimeSynchronizer::new(taps, threshold_factor)?,
            n_antennas,
        ))
    }

    /// Builds a tracker around an existing fine-correlator prototype
    /// (same taps and threshold the batch receiver scans with).
    pub fn from_correlator(scan: TimeSynchronizer, n_antennas: usize) -> Self {
        let n_ant = n_antennas.max(1);
        Self {
            scan,
            coarse: CoarseTracker::new(n_ant),
            n_ant,
            origin: 0,
            ingested: 0,
            hist: (0..n_ant).map(|_| Vec::new()).collect(),
            hist_base: 0,
            state: TrackState::Searching,
            locked: None,
            column: vec![CQ15::ZERO; n_ant],
        }
    }

    /// Absolute samples consumed so far.
    pub fn position(&self) -> usize {
        self.ingested
    }

    /// The last delivered detection, if any.
    pub fn locked(&self) -> Option<SyncEvent> {
        self.locked
    }

    /// `true` once a detection has been delivered (or the stream
    /// flushed); push further samples only after
    /// [`SyncTracker::rearm_at`].
    pub fn is_locked(&self) -> bool {
        self.state == TrackState::Locked
    }

    /// Re-arms the tracker for the next burst: the coarse search
    /// restarts fresh at absolute `position` (≥ the current position
    /// is typical — the caller replays any already-buffered samples it
    /// holds past that point). History is discarded.
    pub fn rearm_at(&mut self, position: usize) {
        self.coarse.reset();
        self.origin = position;
        self.ingested = position;
        for h in &mut self.hist {
            h.clear();
        }
        self.hist_base = position;
        self.state = TrackState::Searching;
        self.locked = None;
    }

    /// Pushes one equal-length chunk per antenna and returns a
    /// detection if acquisition completes inside this chunk. After a
    /// detection the tracker is latched ([`SyncTracker::is_locked`])
    /// until re-armed.
    ///
    /// # Panics
    ///
    /// Panics on a wrong antenna count, unequal chunk lengths, or a
    /// push while locked.
    pub fn push_chunks<S: AsRef<[CQ15]>>(&mut self, chunks: &[S]) -> Option<SyncEvent> {
        assert_eq!(chunks.len(), self.n_ant, "sync tracker antenna count");
        let len = chunks[0].as_ref().len();
        assert!(
            chunks.iter().all(|c| c.as_ref().len() == len),
            "sync tracker chunks must be equal length"
        );
        assert!(
            self.state != TrackState::Locked,
            "sync tracker pushed while locked; call rearm_at first"
        );
        for (h, c) in self.hist.iter_mut().zip(chunks) {
            h.extend_from_slice(c.as_ref());
        }
        self.ingested += len;

        if self.state == TrackState::Searching {
            // Drive the coarse detector column by column over the new
            // samples (local column index = absolute - origin).
            let start = self.origin + self.coarse.samples_seen();
            for j in start..self.ingested {
                for (slot, hist) in self.column.iter_mut().zip(&self.hist) {
                    *slot = hist[j - self.hist_base];
                }
                if let Some(coarse) = self.coarse.push_column(&self.column) {
                    self.state = TrackState::FineWait {
                        sts_end: self.origin + coarse.sts_end,
                    };
                    break;
                }
            }
        }

        if let TrackState::FineWait { sts_end } = self.state {
            if self.ingested >= sts_end + WINDOW + LAG {
                return self.resolve_fine(sts_end, sts_end + WINDOW + LAG);
            }
        } else {
            self.compact();
        }
        None
    }

    /// Finalizes at end-of-stream: applies the coarse end-of-buffer
    /// plateau rule and runs the fine scan over whatever window is
    /// buffered (the batch path's `hi.min(len)` clamp). The tracker is
    /// locked afterwards.
    pub fn flush(&mut self) -> Option<SyncEvent> {
        let sts_end = match self.state {
            TrackState::Locked => return None,
            TrackState::FineWait { sts_end } => Some(sts_end),
            TrackState::Searching => self.coarse.finish().map(|c| self.origin + c.sts_end),
        };
        let event = sts_end
            .and_then(|sts_end| self.resolve_fine(sts_end, (sts_end + WINDOW + LAG).min(self.ingested)));
        self.state = TrackState::Locked;
        event
    }

    /// The fine stage: scan every antenna's history in
    /// `[sts_end - 48, hi)` and keep the strongest peak — identical
    /// antenna fold to the batch receiver (later antennas win ties).
    fn resolve_fine(&mut self, sts_end: usize, hi: usize) -> Option<SyncEvent> {
        let lo = sts_end.saturating_sub(WINDOW + LAG);
        let mut best: Option<SyncEvent> = None;
        for hist in &self.hist {
            // The scan helper saturates its priming window at slice
            // start; history always reaches back `FINE_REACH` samples
            // (or to absolute 0), so local and absolute saturation
            // coincide.
            let lo_local = lo.saturating_sub(self.hist_base);
            let hi_local = hi.saturating_sub(self.hist_base).min(hist.len());
            if let Some(mut event) = self.scan.scan_peak_window(hist, lo_local, hi_local) {
                event.peak_index += self.hist_base;
                event.lts_start += self.hist_base;
                if best.is_none_or(|b| event.magnitude >= b.magnitude) {
                    best = Some(event);
                }
            }
        }
        match best {
            Some(event) => {
                self.state = TrackState::Locked;
                self.locked = Some(event);
                // History is the receiver's business from here on.
                for h in &mut self.hist {
                    h.clear();
                }
                self.hist_base = self.ingested;
                Some(event)
            }
            None => {
                // Degenerate window (e.g. all-zero samples after a
                // false coarse plateau): resume searching past it.
                self.coarse.reset();
                self.origin = self.ingested;
                self.state = TrackState::Searching;
                self.compact();
                None
            }
        }
    }

    /// Drops history the fine stage can no longer reach. Amortized
    /// O(1) per sample; buffer capacity stops growing at steady state.
    fn compact(&mut self) {
        let keep_from = self.ingested.saturating_sub(KEEP);
        if keep_from > self.hist_base && self.hist[0].len() > 2 * KEEP {
            let drop = keep_from - self.hist_base;
            for h in &mut self.hist {
                h.drain(..drop);
            }
            self.hist_base = keep_from;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_fft::FixedFft;
    use mimo_ofdm::{preamble, SubcarrierMap};

    fn preamble_burst() -> (Vec<CQ15>, usize, Vec<CQ15>) {
        let fft = FixedFft::new(64).unwrap();
        let map = SubcarrierMap::new(64).unwrap();
        let taps = preamble::sync_reference(&fft, &map, 0.5).unwrap();
        let mut burst = preamble::sts_time(&fft, &map, 0.5).unwrap();
        let lts_start = burst.len();
        burst.extend(preamble::lts_time(&fft, &map, 0.5).unwrap());
        (burst, lts_start, taps)
    }

    /// Whole-capture reference: the batch two-stage acquisition.
    fn batch_acquire(streams: &[Vec<CQ15>], taps: &[CQ15]) -> Option<SyncEvent> {
        let sync = TimeSynchronizer::new(taps.to_vec(), crate::DEFAULT_THRESHOLD_FACTOR).unwrap();
        let coarse = crate::coarse_sts_end(streams)?;
        streams
            .iter()
            .filter_map(|s| {
                sync.scan_peak_window(s, coarse.sts_end.saturating_sub(48), coarse.sts_end + 48)
            })
            .max_by_key(|e| e.magnitude)
    }

    fn feed_chunked(
        tracker: &mut SyncTracker,
        streams: &[Vec<CQ15>],
        chunk: usize,
    ) -> Option<SyncEvent> {
        let len = streams[0].len();
        let mut at = 0;
        while at < len {
            let end = (at + chunk).min(len);
            let views: Vec<&[CQ15]> = streams.iter().map(|s| &s[at..end]).collect();
            if let Some(event) = tracker.push_chunks(&views) {
                return Some(event);
            }
            at = end;
        }
        tracker.flush()
    }

    #[test]
    fn chunked_equals_batch_every_chunk_size() {
        let (burst, _, taps) = preamble_burst();
        // Pad with a payload-ish tail so the plateau closes mid-capture.
        let mut stream = vec![CQ15::ZERO; 33];
        stream.extend_from_slice(&burst);
        stream.extend((0..500).map(|i| CQ15::from_f64(0.05 * ((i % 7) as f64 - 3.0), 0.02)));
        let streams = vec![stream];
        let want = batch_acquire(&streams, &taps).expect("batch acquires");
        for chunk in [1usize, 7, 13, 64, 80, 333, streams[0].len()] {
            let mut tracker =
                SyncTracker::new(taps.clone(), crate::DEFAULT_THRESHOLD_FACTOR, 1).unwrap();
            let got = feed_chunked(&mut tracker, &streams, chunk).expect("tracker acquires");
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn chunked_equals_batch_when_plateau_touches_buffer_end() {
        // Truncate right after the STS so the coarse plateau runs to
        // the end of the capture: the flush() path must reproduce the
        // batch end-of-buffer rule, including its one-sample-deferred
        // evaluation order.
        let (burst, lts_start, taps) = preamble_burst();
        for cut in [lts_start, lts_start + 5, lts_start + 33] {
            let streams = vec![burst[..cut].to_vec()];
            let want = batch_acquire(&streams, &taps);
            for chunk in [1usize, 7, 80, cut] {
                let mut tracker =
                    SyncTracker::new(taps.clone(), crate::DEFAULT_THRESHOLD_FACTOR, 1).unwrap();
                let got = feed_chunked(&mut tracker, &streams, chunk);
                assert_eq!(got, want, "cut {cut} chunk {chunk}");
            }
        }
    }

    #[test]
    fn multi_antenna_fold_matches_batch_tie_breaking() {
        let (burst, _, taps) = preamble_burst();
        // Two antennas with different gains; the batch fold keeps the
        // strongest (last among ties).
        let faded: Vec<CQ15> = burst.iter().map(|s| s.shr_round(2)).collect();
        let mut s0 = faded;
        let mut s1 = burst;
        s0.extend(std::iter::repeat_n(CQ15::ZERO, 300));
        s1.extend(std::iter::repeat_n(CQ15::ZERO, 300));
        let streams = vec![s0, s1];
        let want = batch_acquire(&streams, &taps).expect("batch acquires");
        for chunk in [1usize, 17, 4096] {
            let mut tracker =
                SyncTracker::new(taps.clone(), crate::DEFAULT_THRESHOLD_FACTOR, 2).unwrap();
            let got = feed_chunked(&mut tracker, &streams, chunk).expect("tracker acquires");
            assert_eq!(got, want, "chunk {chunk}");
        }
    }

    #[test]
    fn rearm_finds_back_to_back_bursts_at_absolute_positions() {
        let (burst, lts_start, taps) = preamble_burst();
        let gap = 700usize;
        let mut stream = burst.clone();
        stream.extend(std::iter::repeat_n(CQ15::ZERO, gap));
        stream.extend_from_slice(&burst);
        stream.extend(std::iter::repeat_n(CQ15::ZERO, 300));
        let mut tracker = SyncTracker::new(taps, crate::DEFAULT_THRESHOLD_FACTOR, 1).unwrap();

        let mut events = Vec::new();
        let mut at = 0;
        while at < stream.len() {
            let end = (at + 64).min(stream.len());
            if let Some(event) = tracker.push_chunks(&[&stream[at..end]]) {
                events.push(event);
                // Re-arm just past the detection and replay the rest.
                let resume = event.lts_start + 1;
                tracker.rearm_at(resume);
                let replay_from = resume.min(end);
                if replay_from < end {
                    tracker.push_chunks(&[&stream[replay_from..end]]);
                }
            }
            at = end;
        }
        assert_eq!(events.len(), 2, "both bursts located");
        assert_eq!(events[0].lts_start, lts_start);
        assert_eq!(events[1].lts_start, burst.len() + gap + lts_start);
    }

    #[test]
    fn history_stays_bounded_during_long_idle() {
        let (_, _, taps) = preamble_burst();
        let mut tracker = SyncTracker::new(taps, crate::DEFAULT_THRESHOLD_FACTOR, 1).unwrap();
        let idle = vec![CQ15::ZERO; 257];
        for _ in 0..200 {
            assert!(tracker.push_chunks(&[idle.as_slice()]).is_none());
        }
        assert!(
            tracker.hist[0].len() <= 2 * KEEP + idle.len(),
            "history grew to {}",
            tracker.hist[0].len()
        );
    }
}
