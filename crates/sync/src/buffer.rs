//! The receiver's circular input buffer.
//!
//! "The input to the receiver contains a circular buffer. The buffer is
//! large enough to handle time synchronizer latency. Once the start of
//! frame is located, the LTS symbol minus the cyclic prefix is passed
//! to the FFT." (§IV.B)

use mimo_fixed::CQ15;

/// A fixed-capacity circular sample buffer with absolute indexing:
/// samples are addressed by their position in the stream, and stay
/// retrievable until overwritten `capacity` samples later.
///
/// # Examples
///
/// ```
/// use mimo_fixed::CQ15;
/// use mimo_sync::CircularBuffer;
///
/// let mut buf = CircularBuffer::new(4);
/// for i in 0..6 {
///     buf.push(CQ15::from_f64(i as f64 / 8.0, 0.0));
/// }
/// assert!(buf.get(1).is_none());        // overwritten
/// assert!(buf.get(3).is_some());        // still held
/// assert_eq!(buf.get(5).unwrap().re.to_f64(), 5.0 / 8.0);
/// ```
#[derive(Debug, Clone)]
pub struct CircularBuffer {
    mem: Vec<CQ15>,
    /// Total samples ever pushed (next absolute index).
    written: usize,
}

impl CircularBuffer {
    /// Creates a buffer holding the last `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            mem: vec![CQ15::ZERO; capacity],
            written: 0,
        }
    }

    /// Buffer capacity in samples.
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// Total samples pushed so far.
    pub fn len(&self) -> usize {
        self.written
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Appends one sample (one clock of the write port).
    pub fn push(&mut self, sample: CQ15) {
        let idx = self.written % self.mem.len();
        self.mem[idx] = sample;
        self.written += 1;
    }

    /// Reads the sample at absolute stream position `index`, if it is
    /// still resident.
    pub fn get(&self, index: usize) -> Option<CQ15> {
        if index >= self.written {
            return None;
        }
        if self.written - index > self.mem.len() {
            return None; // overwritten
        }
        Some(self.mem[index % self.mem.len()])
    }

    /// Copies `len` samples starting at absolute position `start`, if
    /// the whole range is resident — used to hand "the LTS symbol minus
    /// the cyclic prefix" to the FFT after a sync event.
    pub fn slice(&self, start: usize, len: usize) -> Option<Vec<CQ15>> {
        (start..start + len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: usize) -> CQ15 {
        CQ15::from_f64((v % 100) as f64 / 256.0, 0.0)
    }

    #[test]
    fn holds_last_capacity_samples() {
        let mut buf = CircularBuffer::new(8);
        for i in 0..20 {
            buf.push(s(i));
        }
        assert_eq!(buf.len(), 20);
        for i in 0..12 {
            assert!(buf.get(i).is_none(), "sample {i} must be gone");
        }
        for i in 12..20 {
            assert_eq!(buf.get(i), Some(s(i)), "sample {i}");
        }
        assert!(buf.get(20).is_none(), "future sample");
    }

    #[test]
    fn slice_spanning_wraparound() {
        let mut buf = CircularBuffer::new(8);
        for i in 0..11 {
            buf.push(s(i));
        }
        let got = buf.slice(5, 4).expect("range resident");
        assert_eq!(got, vec![s(5), s(6), s(7), s(8)]);
        assert!(buf.slice(2, 4).is_none(), "partially overwritten");
        assert!(buf.slice(9, 4).is_none(), "extends past write head");
    }

    #[test]
    fn sized_for_sync_latency() {
        // The receiver needs the LTS (2.5·N samples) to still be
        // resident when the synchroniser fires 16 samples into it:
        // capacity 4·N is comfortably enough for N=64.
        let n = 64;
        let mut buf = CircularBuffer::new(4 * n);
        let lts_start = 173; // arbitrary burst offset
        for i in 0..(lts_start + 5 * n / 2) {
            buf.push(s(i));
        }
        let lts = buf.slice(lts_start, 5 * n / 2).expect("LTS resident");
        assert_eq!(lts.len(), 160);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CircularBuffer::new(0);
    }
}
