//! Modulation schemes and their Gray-coded axis mappings.

use std::fmt;

/// The modulation schemes supported by the transceiver. The paper's
/// symbol-mapper LUT address width selects among exactly these: "1-bit
/// [for BPSK], 2-bit for QPSK, 4-bit for 16-QAM and 6-bit for 64-QAM".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Modulation {
    /// Binary phase-shift keying, 1 bit/subcarrier.
    Bpsk,
    /// Quadrature phase-shift keying, 2 bits/subcarrier.
    Qpsk,
    /// 16-point quadrature amplitude modulation, 4 bits/subcarrier.
    #[default]
    Qam16,
    /// 64-point quadrature amplitude modulation, 6 bits/subcarrier.
    Qam64,
}

impl Modulation {
    /// All supported schemes, in increasing spectral efficiency.
    pub const ALL: [Modulation; 4] = [
        Modulation::Bpsk,
        Modulation::Qpsk,
        Modulation::Qam16,
        Modulation::Qam64,
    ];

    /// Bits carried per subcarrier (the mapper LUT address width).
    pub fn bits_per_symbol(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }

    /// Bits mapped onto each of the I and Q axes (BPSK uses I only).
    pub fn bits_per_axis(self) -> usize {
        match self {
            Modulation::Bpsk => 1,
            other => other.bits_per_symbol() / 2,
        }
    }

    /// The 802.11a power normalization denominator: constellation
    /// points are odd integers divided by √(this).
    pub fn norm_factor(self) -> f64 {
        match self {
            Modulation::Bpsk => 1.0,
            Modulation::Qpsk => 2.0,
            Modulation::Qam16 => 10.0,
            Modulation::Qam64 => 42.0,
        }
    }

    /// Number of amplitude levels per axis.
    pub fn levels_per_axis(self) -> usize {
        1 << self.bits_per_axis()
    }

    /// Decodes Gray-coded axis bits (MSB first, transmission order)
    /// into the signed odd level `−(L−1) … +(L−1)`.
    ///
    /// This is the content generator for the mapper ROM: 802.11a uses
    /// binary-reflected Gray code along each axis (e.g. 16-QAM I axis:
    /// 00→−3, 01→−1, 11→+1, 10→+3).
    pub fn gray_bits_to_level(self, bits: &[u8]) -> i32 {
        debug_assert_eq!(bits.len(), self.bits_per_axis());
        let mut gray = 0u32;
        for &bit in bits {
            gray = (gray << 1) | u32::from(bit & 1);
        }
        // Binary-reflected Gray decode: fold the shifted value down.
        let mut binary = 0u32;
        let mut g = gray;
        while g != 0 {
            binary ^= g;
            g >>= 1;
        }
        let index = binary as i32;
        2 * index - (self.levels_per_axis() as i32 - 1)
    }

    /// Encodes a signed odd level back into Gray axis bits (MSB first):
    /// the inverse of [`Modulation::gray_bits_to_level`].
    pub fn level_to_gray_bits(self, level: i32) -> Vec<u8> {
        let mut bits = vec![0u8; self.bits_per_axis()];
        self.level_to_gray_bits_into(level, &mut bits);
        bits
    }

    /// Allocation-free [`Modulation::level_to_gray_bits`] into a
    /// caller-provided buffer of exactly `bits_per_axis` bits.
    pub fn level_to_gray_bits_into(self, level: i32, bits: &mut [u8]) {
        let index = ((level + self.levels_per_axis() as i32 - 1) / 2) as u32;
        let gray = index ^ (index >> 1);
        let n = self.bits_per_axis();
        debug_assert_eq!(bits.len(), n);
        for (i, bit) in bits.iter_mut().enumerate() {
            *bit = ((gray >> (n - 1 - i)) & 1) as u8;
        }
    }
}

impl fmt::Display for Modulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Modulation::Bpsk => "BPSK",
            Modulation::Qpsk => "QPSK",
            Modulation::Qam16 => "16-QAM",
            Modulation::Qam64 => "64-QAM",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_per_symbol_matches_paper_lut_widths() {
        assert_eq!(Modulation::Bpsk.bits_per_symbol(), 1);
        assert_eq!(Modulation::Qpsk.bits_per_symbol(), 2);
        assert_eq!(Modulation::Qam16.bits_per_symbol(), 4);
        assert_eq!(Modulation::Qam64.bits_per_symbol(), 6);
    }

    #[test]
    fn gray_mapping_16qam_standard_table() {
        let m = Modulation::Qam16;
        assert_eq!(m.gray_bits_to_level(&[0, 0]), -3);
        assert_eq!(m.gray_bits_to_level(&[0, 1]), -1);
        assert_eq!(m.gray_bits_to_level(&[1, 1]), 1);
        assert_eq!(m.gray_bits_to_level(&[1, 0]), 3);
    }

    #[test]
    fn gray_mapping_64qam_standard_table() {
        let m = Modulation::Qam64;
        let expect = [
            (vec![0, 0, 0], -7),
            (vec![0, 0, 1], -5),
            (vec![0, 1, 1], -3),
            (vec![0, 1, 0], -1),
            (vec![1, 1, 0], 1),
            (vec![1, 1, 1], 3),
            (vec![1, 0, 1], 5),
            (vec![1, 0, 0], 7),
        ];
        for (bits, level) in expect {
            assert_eq!(m.gray_bits_to_level(&bits), level, "{bits:?}");
        }
    }

    #[test]
    fn gray_roundtrip_all_levels() {
        for m in Modulation::ALL {
            let l = m.levels_per_axis() as i32;
            for idx in 0..l {
                let level = 2 * idx - (l - 1);
                let bits = m.level_to_gray_bits(level);
                assert_eq!(m.gray_bits_to_level(&bits), level, "{m} level {level}");
            }
        }
    }

    #[test]
    fn gray_adjacent_levels_differ_in_one_bit() {
        for m in [Modulation::Qam16, Modulation::Qam64] {
            let l = m.levels_per_axis() as i32;
            for idx in 0..l - 1 {
                let a = m.level_to_gray_bits(2 * idx - (l - 1));
                let b = m.level_to_gray_bits(2 * (idx + 1) - (l - 1));
                let diff: usize = a.iter().zip(&b).filter(|(x, y)| x != y).count();
                assert_eq!(diff, 1, "{m} levels {idx},{}", idx + 1);
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Qam64.to_string(), "64-QAM");
    }
}
