//! Symbol mapping and demapping (BPSK, QPSK, 16-QAM, 64-QAM).
//!
//! On the transmitter "the symbol mapper is a simple look up memory.
//! The address of this memory is the output of the block interleaver
//! ... Each address of the symbol mapper LUT contains the corresponding
//! I and Q values that represent the constellation location" (§IV.A).
//! On the receiver "the symbol demapper is implemented using a
//! decoder-multiplexer structure \[and\] can be set up to perform hard or
//! soft symbol demapping" (§IV.B).
//!
//! * [`Modulation`] — the four schemes with 802.11a Gray mapping and
//!   power normalization.
//! * [`SymbolMapper`] — the LUT model; [`SymbolMapper::lut`] exposes
//!   the exact ROM contents for the FPGA memory-bit accounting.
//! * [`SymbolDemapper`] — threshold-based hard slicing (the
//!   decoder-mux) and max-log piecewise-linear soft LLRs.

mod demapper;
mod mapper;
mod modulation;

pub use demapper::SymbolDemapper;
pub use mapper::{ModemError, SymbolMapper};
pub use modulation::Modulation;

/// Default full-scale backoff applied to constellation points so the
/// largest 64-QAM coordinate (7/√42 ≈ 1.08) fits the Q1.15 bus with
/// headroom. All four schemes share it so relative powers are
/// standard-conformant.
pub const CONSTELLATION_SCALE: f64 = 0.5;
