//! The symbol-mapper look-up memory.

use std::error::Error;
use std::fmt;

use mimo_fixed::{CQ15, SAMPLE_BITS};

use crate::modulation::Modulation;
use crate::CONSTELLATION_SCALE;

/// Errors from the mapper/demapper.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ModemError {
    /// Bit-stream length is not a multiple of bits-per-symbol.
    RaggedBits {
        /// Supplied length.
        got: usize,
        /// Required multiple.
        multiple: usize,
    },
    /// Scale must be positive and at most 0.9 (headroom for 64-QAM).
    BadScale(f64),
}

impl fmt::Display for ModemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModemError::RaggedBits { got, multiple } => {
                write!(f, "bit count {got} is not a multiple of {multiple}")
            }
            ModemError::BadScale(s) => write!(f, "constellation scale {s} out of (0, 0.9]"),
        }
    }
}

impl Error for ModemError {}

/// The transmitter's symbol mapper: a LUT addressed by interleaved
/// coded bits, returning Q1.15 I/Q constellation points.
///
/// The paper duplicates this ROM once and uses both ports of each of
/// the two RAMs to serve all four channels; [`SymbolMapper::lut`]
/// returns the exact ROM contents so the FPGA model can count its
/// memory bits.
///
/// # Examples
///
/// ```
/// use mimo_modem::{Modulation, SymbolMapper};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mapper = SymbolMapper::new(Modulation::Qpsk)?;
/// let symbols = mapper.map_bits(&[0, 0, 1, 1])?;
/// assert_eq!(symbols.len(), 2);
/// // Bit pattern 00 -> most-negative corner; 11 -> most-positive.
/// assert!(symbols[0].re.to_f64() < 0.0 && symbols[0].im.to_f64() < 0.0);
/// assert!(symbols[1].re.to_f64() > 0.0 && symbols[1].im.to_f64() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymbolMapper {
    modulation: Modulation,
    scale: f64,
    lut: Vec<CQ15>,
}

impl SymbolMapper {
    /// Creates a mapper with the default constellation backoff
    /// ([`CONSTELLATION_SCALE`]).
    ///
    /// # Errors
    ///
    /// Never fails for the default scale; the `Result` mirrors
    /// [`SymbolMapper::with_scale`].
    pub fn new(modulation: Modulation) -> Result<Self, ModemError> {
        Self::with_scale(modulation, CONSTELLATION_SCALE)
    }

    /// Creates a mapper with an explicit full-scale backoff. The RMS of
    /// the constellation equals `scale` for every modulation.
    ///
    /// # Errors
    ///
    /// Returns [`ModemError::BadScale`] outside `(0, 0.9]` (64-QAM
    /// corners would clip the 16-bit bus beyond 0.9·√(49/21)).
    pub fn with_scale(modulation: Modulation, scale: f64) -> Result<Self, ModemError> {
        if !(scale > 0.0 && scale <= 0.9) {
            return Err(ModemError::BadScale(scale));
        }
        // Capacity for the widest LUT (64-QAM) up front, so later
        // in-place reconfiguration never reallocates.
        let mut mapper = Self {
            modulation,
            scale,
            lut: Vec::with_capacity(1 << Modulation::Qam64.bits_per_symbol()),
        };
        mapper.fill_lut();
        Ok(mapper)
    }

    /// Rewrites this mapper's ROM in place for a different modulation,
    /// keeping the configured scale. The LUT buffer was reserved for
    /// the widest constellation at construction, so per-burst rate
    /// changes allocate nothing — the software analogue of re-pointing
    /// the hardware LUT address width.
    pub fn reconfigure(&mut self, modulation: Modulation) {
        if modulation == self.modulation {
            return;
        }
        self.modulation = modulation;
        self.fill_lut();
    }

    fn fill_lut(&mut self) {
        let bps = self.modulation.bits_per_symbol();
        self.lut.clear();
        let mut bits = [0u8; 8];
        for addr in 0..1usize << bps {
            for (i, bit) in bits[..bps].iter_mut().enumerate() {
                *bit = ((addr >> (bps - 1 - i)) & 1) as u8;
            }
            self.lut
                .push(Self::map_one(self.modulation, self.scale, &bits[..bps]));
        }
    }

    fn map_one(modulation: Modulation, scale: f64, bits: &[u8]) -> CQ15 {
        let unit = scale / modulation.norm_factor().sqrt();
        match modulation {
            Modulation::Bpsk => {
                let level = modulation.gray_bits_to_level(&bits[..1]);
                CQ15::from_f64(level as f64 * unit, 0.0)
            }
            _ => {
                let half = modulation.bits_per_axis();
                let i_level = modulation.gray_bits_to_level(&bits[..half]);
                let q_level = modulation.gray_bits_to_level(&bits[half..]);
                CQ15::from_f64(i_level as f64 * unit, q_level as f64 * unit)
                    .saturate_bits(SAMPLE_BITS)
            }
        }
    }

    /// The modulation this mapper implements.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// The configured constellation scale (RMS amplitude).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The ROM contents: `2^bits_per_symbol` I/Q words. Address bits
    /// are the coded bits in transmission order, MSB first.
    pub fn lut(&self) -> &[CQ15] {
        &self.lut
    }

    /// Maps a bit stream to constellation symbols.
    ///
    /// # Errors
    ///
    /// Returns [`ModemError::RaggedBits`] unless the length is a
    /// multiple of [`Modulation::bits_per_symbol`].
    pub fn map_bits(&self, bits: &[u8]) -> Result<Vec<CQ15>, ModemError> {
        let bps = self.modulation.bits_per_symbol();
        if !bits.len().is_multiple_of(bps) {
            return Err(ModemError::RaggedBits {
                got: bits.len(),
                multiple: bps,
            });
        }
        let mut out = vec![CQ15::ZERO; bits.len() / bps];
        self.map_bits_into(bits, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SymbolMapper::map_bits`] into a
    /// caller-provided buffer of exactly
    /// `bits.len() / bits_per_symbol` symbols.
    ///
    /// # Errors
    ///
    /// Returns [`ModemError::RaggedBits`] on a ragged bit stream or a
    /// mismatched output length.
    pub fn map_bits_into(&self, bits: &[u8], out: &mut [CQ15]) -> Result<(), ModemError> {
        let bps = self.modulation.bits_per_symbol();
        if !bits.len().is_multiple_of(bps) || out.len() * bps != bits.len() {
            return Err(ModemError::RaggedBits {
                got: bits.len(),
                multiple: bps,
            });
        }
        for (group, sym) in bits.chunks_exact(bps).zip(out.iter_mut()) {
            let mut addr = 0usize;
            for &b in group {
                addr = (addr << 1) | usize::from(b & 1);
            }
            *sym = self.lut[addr];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_fixed::Cf64;

    #[test]
    fn lut_sizes_match_address_widths() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            assert_eq!(mapper.lut().len(), 1 << m.bits_per_symbol(), "{m}");
        }
    }

    #[test]
    fn average_power_is_scale_squared() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            let avg: f64 = mapper
                .lut()
                .iter()
                .map(|&p| Cf64::from_fixed(p).norm_sqr())
                .sum::<f64>()
                / mapper.lut().len() as f64;
            let expect = CONSTELLATION_SCALE * CONSTELLATION_SCALE;
            assert!(
                (avg - expect).abs() < 1e-3,
                "{m}: avg power {avg}, want {expect}"
            );
        }
    }

    #[test]
    fn bpsk_is_antipodal_on_i_axis() {
        let mapper = SymbolMapper::new(Modulation::Bpsk).unwrap();
        let zero = Cf64::from_fixed(mapper.lut()[0]);
        let one = Cf64::from_fixed(mapper.lut()[1]);
        assert!(zero.re < 0.0 && one.re > 0.0);
        assert_eq!(zero.im, 0.0);
        assert!((zero.re + one.re).abs() < 1e-6);
    }

    #[test]
    fn qam16_corner_points() {
        let mapper = SymbolMapper::new(Modulation::Qam16).unwrap();
        // 0000 -> I=-3, Q=-3 (most negative corner).
        let corner = Cf64::from_fixed(mapper.map_bits(&[0, 0, 0, 0]).unwrap()[0]);
        let unit = CONSTELLATION_SCALE / 10f64.sqrt();
        assert!((corner.re - -3.0 * unit).abs() < 1e-4);
        assert!((corner.im - -3.0 * unit).abs() < 1e-4);
        // 1010 -> I=+3, Q=+3.
        let corner = Cf64::from_fixed(mapper.map_bits(&[1, 0, 1, 0]).unwrap()[0]);
        assert!((corner.re - 3.0 * unit).abs() < 1e-4);
        assert!((corner.im - 3.0 * unit).abs() < 1e-4);
    }

    #[test]
    fn all_constellation_points_fit_the_bus() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            for &p in mapper.lut() {
                assert!(p.fits_bits(16), "{m}: {p:?}");
            }
        }
    }

    #[test]
    fn ragged_input_rejected() {
        let mapper = SymbolMapper::new(Modulation::Qam16).unwrap();
        assert!(matches!(
            mapper.map_bits(&[1, 0, 1]),
            Err(ModemError::RaggedBits { got: 3, multiple: 4 })
        ));
    }

    #[test]
    fn reconfigure_matches_fresh_build() {
        let mut mapper = SymbolMapper::new(Modulation::Qam64).unwrap();
        let cap = mapper.lut.capacity();
        for m in Modulation::ALL {
            mapper.reconfigure(m);
            let fresh = SymbolMapper::new(m).unwrap();
            assert_eq!(mapper.lut(), fresh.lut(), "{m}");
            assert_eq!(mapper.modulation(), m);
            assert_eq!(mapper.lut.capacity(), cap, "{m}: LUT reallocated");
        }
    }

    #[test]
    fn bad_scale_rejected() {
        assert!(SymbolMapper::with_scale(Modulation::Qam64, 0.0).is_err());
        assert!(SymbolMapper::with_scale(Modulation::Qam64, 1.5).is_err());
        assert!(SymbolMapper::with_scale(Modulation::Qam64, 0.9).is_ok());
    }
}
