//! The decoder-multiplexer symbol demapper (hard and soft).

use mimo_coding::Llr;
use mimo_fixed::{CQ15, Cf64};

use crate::mapper::{ModemError, SymbolMapper};
use crate::modulation::Modulation;

/// LLR units produced per constellation-unit of distance: a symbol one
/// level-spacing away from a decision boundary yields ±2·this.
const LLR_UNIT: f64 = 16.0;

/// Maximum soft-output magnitude (keeps Viterbi path metrics small).
const LLR_CLAMP: Llr = 1024;

/// The receiver's symbol demapper.
///
/// Hard demapping models the paper's decoder-multiplexer: each axis is
/// sliced against the level thresholds and the Gray bits read off.
/// Soft demapping produces max-log piecewise-linear LLRs per coded bit
/// (the standard simplification that hardware soft demappers use for
/// Gray-mapped QAM).
///
/// # Examples
///
/// ```
/// use mimo_modem::{Modulation, SymbolDemapper, SymbolMapper};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mapper = SymbolMapper::new(Modulation::Qam16)?;
/// let demapper = SymbolDemapper::new(Modulation::Qam16)?;
/// let bits = vec![1, 0, 1, 1, 0, 0, 0, 1];
/// let symbols = mapper.map_bits(&bits)?;
/// assert_eq!(demapper.hard_demap(&symbols), bits);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymbolDemapper {
    modulation: Modulation,
    /// Distance between adjacent constellation levels / 2.
    unit: f64,
}

impl SymbolDemapper {
    /// Creates a demapper with the default constellation scale.
    ///
    /// # Errors
    ///
    /// Mirrors [`SymbolMapper::new`]; never fails for the default.
    pub fn new(modulation: Modulation) -> Result<Self, ModemError> {
        let mapper = SymbolMapper::new(modulation)?;
        Ok(Self::matched_to(&mapper))
    }

    /// Creates a demapper whose thresholds match a specific mapper
    /// (same modulation and scale).
    pub fn matched_to(mapper: &SymbolMapper) -> Self {
        Self {
            modulation: mapper.modulation(),
            unit: mapper.scale() / mapper.modulation().norm_factor().sqrt(),
        }
    }

    /// The modulation this demapper slices.
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Re-points this demapper at a different mapper's constellation
    /// in place (no allocation): the per-burst rate reconfiguration
    /// counterpart of [`SymbolMapper::reconfigure`].
    pub fn reconfigure_matched_to(&mut self, mapper: &SymbolMapper) {
        *self = Self::matched_to(mapper);
    }

    /// Hard decision: nearest constellation point, Gray bits out.
    /// Output length is `symbols.len() * bits_per_symbol`.
    pub fn hard_demap(&self, symbols: &[CQ15]) -> Vec<u8> {
        let bps = self.modulation.bits_per_symbol();
        let mut out = vec![0u8; symbols.len() * bps];
        self.hard_demap_into(symbols, &mut out);
        out
    }

    /// Soft decision: one LLR per coded bit, positive = bit 0 likelier.
    /// Output length is `symbols.len() * bits_per_symbol`.
    pub fn soft_demap(&self, symbols: &[CQ15]) -> Vec<Llr> {
        let bps = self.modulation.bits_per_symbol();
        let mut out = vec![0 as Llr; symbols.len() * bps];
        self.soft_demap_into(symbols, &mut out);
        out
    }

    /// Allocation-free [`SymbolDemapper::hard_demap`] into a
    /// caller-provided buffer of exactly
    /// `symbols.len() * bits_per_symbol` bits.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-size output buffer (this is an internal hot
    /// path; the workspace sizes buffers from the configuration).
    pub fn hard_demap_into(&self, symbols: &[CQ15], out: &mut [u8]) {
        let bps = self.modulation.bits_per_symbol();
        assert_eq!(out.len(), symbols.len() * bps, "demap buffer size");
        let half = self.modulation.bits_per_axis();
        for (&sym, bits) in symbols.iter().zip(out.chunks_exact_mut(bps)) {
            let c = Cf64::from_fixed(sym);
            match self.modulation {
                Modulation::Bpsk => {
                    self.axis_hard_bits_into(c.re, bits);
                }
                _ => {
                    let (i_bits, q_bits) = bits.split_at_mut(half);
                    self.axis_hard_bits_into(c.re, i_bits);
                    self.axis_hard_bits_into(c.im, q_bits);
                }
            }
        }
    }

    /// Allocation-free [`SymbolDemapper::soft_demap`] into a
    /// caller-provided buffer of exactly
    /// `symbols.len() * bits_per_symbol` LLRs.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-size output buffer.
    pub fn soft_demap_into(&self, symbols: &[CQ15], out: &mut [Llr]) {
        let bps = self.modulation.bits_per_symbol();
        assert_eq!(out.len(), symbols.len() * bps, "demap buffer size");
        let half = self.modulation.bits_per_axis();
        for (&sym, llrs) in symbols.iter().zip(out.chunks_exact_mut(bps)) {
            let c = Cf64::from_fixed(sym);
            match self.modulation {
                Modulation::Bpsk => {
                    self.axis_soft_llrs_into(c.re, llrs);
                }
                _ => {
                    let (i_llrs, q_llrs) = llrs.split_at_mut(half);
                    self.axis_soft_llrs_into(c.re, i_llrs);
                    self.axis_soft_llrs_into(c.im, q_llrs);
                }
            }
        }
    }

    /// Fused soft demap: demaps each symbol and scatters its LLRs
    /// through a precomputed map (demapped bit `k` of the block lands
    /// at `out[map[k]]`), collapsing the receiver's
    /// demap→deinterleave→depuncture walk into one pass. Positions of
    /// `out` that `map` never names are left untouched, so a pre-zeroed
    /// buffer keeps zero-LLR puncture erasures for free.
    ///
    /// # Panics
    ///
    /// Panics unless `map` covers exactly
    /// `symbols.len() * bits_per_symbol` demapped bits, or when a map
    /// entry falls outside `out` (the workspace sizes both from the
    /// operating point).
    // phylint: hot
    pub fn soft_demap_scatter_into(&self, symbols: &[CQ15], map: &[u32], out: &mut [Llr]) {
        let bps = self.modulation.bits_per_symbol();
        assert_eq!(map.len(), symbols.len() * bps, "scatter map size");
        let half = self.modulation.bits_per_axis();
        let mut llrs = [0 as Llr; 8];
        for (&sym, positions) in symbols.iter().zip(map.chunks_exact(bps)) {
            let c = Cf64::from_fixed(sym);
            match self.modulation {
                Modulation::Bpsk => self.axis_soft_llrs_into(c.re, &mut llrs[..1]),
                _ => {
                    let (i_llrs, q_llrs) = llrs[..bps].split_at_mut(half);
                    self.axis_soft_llrs_into(c.re, i_llrs);
                    self.axis_soft_llrs_into(c.im, q_llrs);
                }
            }
            for (&pos, &l) in positions.iter().zip(&llrs[..bps]) {
                out[pos as usize] = l;
            }
        }
    }
    // phylint: end-hot

    /// Slices one axis to the nearest odd level and writes its Gray
    /// bits (MSB first) into `bits`.
    fn axis_hard_bits_into(&self, x: f64, bits: &mut [u8]) {
        let l = self.modulation.levels_per_axis() as i32;
        let normalized = x / self.unit;
        // Nearest odd level: round((v + L-1)/2) indexes 0..L-1.
        let idx = (((normalized + (l - 1) as f64) / 2.0).round() as i32).clamp(0, l - 1);
        let level = 2 * idx - (l - 1);
        self.modulation.level_to_gray_bits_into(level, bits);
    }

    /// Max-log LLRs for one axis, MSB-first (transmission order),
    /// written into `llrs`.
    ///
    /// The recursion for Gray-mapped PAM with L = 2^n levels:
    /// `m_0 = −x/unit` (sign bit), then
    /// `m_k = |m_{k−1}| − L/2^k` for the interior bits.
    fn axis_soft_llrs_into(&self, x: f64, llrs: &mut [Llr]) {
        let n = self.modulation.bits_per_axis();
        debug_assert_eq!(llrs.len(), n);
        let l = self.modulation.levels_per_axis() as f64;
        let mut m = -x / self.unit;
        for (k, out) in llrs.iter_mut().enumerate() {
            if k > 0 {
                m = m.abs() - l / (1 << k) as f64;
            }
            let scaled = (m * LLR_UNIT).round() as i64;
            *out = scaled.clamp(-(LLR_CLAMP as i64), LLR_CLAMP as i64) as Llr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_coding::llr_to_hard;

    fn exhaustive_bits(m: Modulation) -> Vec<Vec<u8>> {
        let bps = m.bits_per_symbol();
        (0..1usize << bps)
            .map(|v| (0..bps).map(|i| ((v >> (bps - 1 - i)) & 1) as u8).collect())
            .collect()
    }

    #[test]
    fn hard_roundtrip_every_point_every_modulation() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            let demapper = SymbolDemapper::matched_to(&mapper);
            for bits in exhaustive_bits(m) {
                let sym = mapper.map_bits(&bits).unwrap();
                assert_eq!(demapper.hard_demap(&sym), bits, "{m} {bits:?}");
            }
        }
    }

    #[test]
    fn soft_sign_agrees_with_hard_for_clean_symbols() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            let demapper = SymbolDemapper::matched_to(&mapper);
            for bits in exhaustive_bits(m) {
                let sym = mapper.map_bits(&bits).unwrap();
                let soft = demapper.soft_demap(&sym);
                let hard: Vec<u8> = soft.iter().map(|&l| llr_to_hard(l)).collect();
                assert_eq!(hard, bits, "{m} {bits:?}");
            }
        }
    }

    #[test]
    fn soft_magnitude_reflects_distance_from_boundary() {
        let mapper = SymbolMapper::new(Modulation::Qam16).unwrap();
        let demapper = SymbolDemapper::matched_to(&mapper);
        let unit = mapper.scale() / 10f64.sqrt();
        // A symbol right on the I decision boundary -> near-zero LLR.
        let on_boundary = CQ15::from_f64(0.0, unit);
        let llr = demapper.soft_demap(&[on_boundary]);
        assert!(llr[0].abs() <= 1, "boundary symbol must be uncertain: {llr:?}");
        // A deep corner symbol -> confident LLR on the sign bit.
        let corner = CQ15::from_f64(3.0 * unit, 3.0 * unit);
        let llr = demapper.soft_demap(&[corner]);
        assert!(llr[0] < -32, "deep symbol must be confident: {llr:?}");
    }

    #[test]
    fn noisy_symbols_still_slice_to_nearest() {
        let mapper = SymbolMapper::new(Modulation::Qam64).unwrap();
        let demapper = SymbolDemapper::matched_to(&mapper);
        let unit = mapper.scale() / 42f64.sqrt();
        for bits in exhaustive_bits(Modulation::Qam64) {
            let sym = mapper.map_bits(&bits).unwrap()[0];
            // Perturb by 0.4 of a level spacing: still nearest.
            let noisy = CQ15::from_f64(
                sym.re.to_f64() + 0.4 * unit,
                sym.im.to_f64() - 0.4 * unit,
            );
            assert_eq!(demapper.hard_demap(&[noisy]), bits);
        }
    }

    #[test]
    fn scatter_demap_equals_soft_demap_through_the_map() {
        for m in Modulation::ALL {
            let mapper = SymbolMapper::new(m).unwrap();
            let demapper = SymbolDemapper::matched_to(&mapper);
            let bps = m.bits_per_symbol();
            // Eight symbols through a stride-rotation map into a wider
            // buffer with interspersed never-written erasure slots.
            let bits: Vec<u8> = (0..8 * bps).map(|i| ((i * 5 + 1) % 3 == 0) as u8).collect();
            let symbols = mapper.map_bits(&bits).unwrap();
            let n = 8 * bps;
            let map: Vec<u32> = (0..n).map(|k| (2 * ((k * 7) % n)) as u32).collect();
            let mut out = vec![0 as Llr; 2 * n];
            demapper.soft_demap_scatter_into(&symbols, &map, &mut out);
            let soft = demapper.soft_demap(&symbols);
            let mut expect = vec![0 as Llr; 2 * n];
            for (k, &l) in soft.iter().enumerate() {
                expect[map[k] as usize] = l;
            }
            assert_eq!(out, expect, "{m}");
        }
    }

    #[test]
    fn extreme_inputs_clamp_not_panic() {
        let demapper = SymbolDemapper::new(Modulation::Qam16).unwrap();
        let far = CQ15::from_f64(0.99, -0.99);
        let bits = demapper.hard_demap(&[far]);
        assert_eq!(bits.len(), 4);
        let soft = demapper.soft_demap(&[far]);
        assert!(soft.iter().all(|&l| l.abs() <= 1024));
    }
}
