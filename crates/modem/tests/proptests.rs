//! Property-based tests for the mapper/demapper.

use mimo_fixed::{CQ15, Cf64};
use mimo_modem::{Modulation, SymbolDemapper, SymbolMapper};
use proptest::prelude::*;

fn arb_modulation() -> impl Strategy<Value = Modulation> {
    prop_oneof![
        Just(Modulation::Bpsk),
        Just(Modulation::Qpsk),
        Just(Modulation::Qam16),
        Just(Modulation::Qam64),
    ]
}

proptest! {
    /// map → hard demap is the identity for any bit stream.
    #[test]
    fn hard_roundtrip(m in arb_modulation(), seed in any::<u64>()) {
        let mapper = SymbolMapper::new(m).unwrap();
        let demapper = SymbolDemapper::matched_to(&mapper);
        let bps = m.bits_per_symbol();
        let mut state = seed | 1;
        let bits: Vec<u8> = (0..bps * 20)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state & 1) as u8
            })
            .collect();
        let symbols = mapper.map_bits(&bits).unwrap();
        prop_assert_eq!(demapper.hard_demap(&symbols), bits);
    }

    /// Noise below half the minimum point distance never flips a hard
    /// decision.
    #[test]
    fn hard_decisions_respect_decision_radius(
        m in arb_modulation(),
        addr in any::<u16>(),
        dx in -0.99f64..0.99,
        dy in -0.99f64..0.99,
    ) {
        let mapper = SymbolMapper::new(m).unwrap();
        let demapper = SymbolDemapper::matched_to(&mapper);
        let bps = m.bits_per_symbol();
        let addr = (addr as usize) % (1 << bps);
        let bits: Vec<u8> = (0..bps).map(|i| ((addr >> (bps - 1 - i)) & 1) as u8).collect();
        let clean = mapper.map_bits(&bits).unwrap()[0];
        // Half the level spacing is `unit`; stay strictly inside.
        let unit = mapper.scale() / m.norm_factor().sqrt();
        let noisy = CQ15::from_f64(
            clean.re.to_f64() + dx * 0.45 * unit,
            clean.im.to_f64() + dy * 0.45 * unit,
        );
        prop_assert_eq!(demapper.hard_demap(&[noisy]), bits);
    }

    /// Soft LLR signs always agree with the hard decision.
    #[test]
    fn soft_signs_match_hard(
        m in arb_modulation(),
        re in -0.8f64..0.8,
        im in -0.8f64..0.8,
    ) {
        let mapper = SymbolMapper::new(m).unwrap();
        let demapper = SymbolDemapper::matched_to(&mapper);
        let sym = CQ15::from_f64(re, im);
        let hard = demapper.hard_demap(&[sym]);
        let soft = demapper.soft_demap(&[sym]);
        for (bit_idx, (&h, &llr)) in hard.iter().zip(&soft).enumerate() {
            if llr != 0 {
                prop_assert_eq!(
                    h,
                    u8::from(llr < 0),
                    "bit {} of ({}, {}): hard {} vs llr {}",
                    bit_idx, re, im, h, llr
                );
            }
        }
    }

    /// Constellation power is scale² for any legal backoff.
    #[test]
    fn average_power_tracks_scale(m in arb_modulation(), scale in 0.1f64..0.9) {
        let mapper = SymbolMapper::with_scale(m, scale).unwrap();
        let avg: f64 = mapper
            .lut()
            .iter()
            .map(|&p| Cf64::from_fixed(p).norm_sqr())
            .sum::<f64>() / mapper.lut().len() as f64;
        prop_assert!((avg - scale * scale).abs() < 3e-3,
            "{m} scale {scale}: avg power {avg}");
    }
}
