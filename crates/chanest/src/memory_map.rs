//! The Fig 5 channel-estimate memory organisation.
//!
//! The receiver populates "an array of 16 memories ... with the channel
//! matrices": per receive antenna, one 4·S-deep buffer segmented into
//! four S-entry regions, Ĥᵢ₀ at addresses 0…S−1, Ĥᵢ₁ at S…2S−1, Ĥᵢ₂ at
//! 2S…3S−1, Ĥᵢ₃ at 3S…4S−1 (Fig 5 draws S = 512). The inverted
//! estimates live in an identically-shaped array. This module makes
//! that address map executable so the scheduler, estimator and FPGA
//! memory accounting all agree on one layout.

use crate::N_ANTENNAS;

/// Address map of the per-antenna channel-estimate buffers.
///
/// # Examples
///
/// ```
/// use mimo_chanest::HMatrixMemoryMap;
///
/// let map = HMatrixMemoryMap::new(512, 36);
/// // Fig 5: Ĥ23 of subcarrier 7 lives in RX-2's buffer at 3·512 + 7.
/// let loc = map.location(2, 3, 7);
/// assert_eq!(loc.buffer, 2);
/// assert_eq!(loc.address, 1536 + 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HMatrixMemoryMap {
    /// Subcarrier capacity per segment (Fig 5 draws 512).
    segment_depth: usize,
    /// Word width in bits (I + Q at the datapath width).
    word_bits: usize,
}

/// A physical location in the estimate memory array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryLocation {
    /// Which per-antenna buffer (= receive antenna index).
    pub buffer: usize,
    /// Word address within that buffer.
    pub address: usize,
}

impl HMatrixMemoryMap {
    /// Creates the map with a given per-segment depth and word width.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(segment_depth: usize, word_bits: usize) -> Self {
        assert!(segment_depth > 0 && word_bits > 0, "degenerate memory map");
        Self {
            segment_depth,
            word_bits,
        }
    }

    /// The Fig 5 configuration: 512-deep segments, 36-bit words
    /// (18-bit I + 18-bit Q on the CORDIC datapath).
    pub fn paper() -> Self {
        Self::new(512, 36)
    }

    /// Segment depth (subcarrier capacity).
    pub fn segment_depth(&self) -> usize {
        self.segment_depth
    }

    /// Location of element Ĥ(rx, tx) for `subcarrier`.
    ///
    /// # Panics
    ///
    /// Panics if `rx`/`tx` exceed the 4×4 system or the subcarrier
    /// exceeds the segment depth.
    pub fn location(&self, rx: usize, tx: usize, subcarrier: usize) -> MemoryLocation {
        assert!(rx < N_ANTENNAS && tx < N_ANTENNAS, "antenna out of range");
        assert!(
            subcarrier < self.segment_depth,
            "subcarrier {subcarrier} exceeds segment depth {}",
            self.segment_depth
        );
        MemoryLocation {
            buffer: rx,
            address: tx * self.segment_depth + subcarrier,
        }
    }

    /// Inverse of [`HMatrixMemoryMap::location`]: which matrix element
    /// and subcarrier a buffer address holds.
    pub fn element_at(&self, buffer: usize, address: usize) -> (usize, usize, usize) {
        assert!(buffer < N_ANTENNAS, "buffer out of range");
        assert!(address < N_ANTENNAS * self.segment_depth, "address out of range");
        (buffer, address / self.segment_depth, address % self.segment_depth)
    }

    /// Words per buffer (4 segments).
    pub fn buffer_words(&self) -> usize {
        N_ANTENNAS * self.segment_depth
    }

    /// Total bits across the whole 4-buffer array — the figure the
    /// FPGA infrastructure memory budget must cover (×2 for the
    /// inverted-estimate array).
    pub fn total_bits(&self) -> usize {
        N_ANTENNAS * self.buffer_words() * self.word_bits
    }
}

impl Default for HMatrixMemoryMap {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_address_layout() {
        let map = HMatrixMemoryMap::paper();
        // Fig 5's drawn corners.
        assert_eq!(map.location(0, 0, 0), MemoryLocation { buffer: 0, address: 0 });
        assert_eq!(map.location(0, 0, 511), MemoryLocation { buffer: 0, address: 511 });
        assert_eq!(map.location(0, 1, 0), MemoryLocation { buffer: 0, address: 512 });
        assert_eq!(map.location(3, 3, 511), MemoryLocation { buffer: 3, address: 2047 });
    }

    #[test]
    fn location_roundtrip() {
        let map = HMatrixMemoryMap::paper();
        for rx in 0..4 {
            for tx in 0..4 {
                for sc in [0usize, 17, 511] {
                    let loc = map.location(rx, tx, sc);
                    assert_eq!(map.element_at(loc.buffer, loc.address), (rx, tx, sc));
                }
            }
        }
    }

    #[test]
    fn no_two_elements_share_an_address() {
        let map = HMatrixMemoryMap::new(64, 36);
        let mut seen = std::collections::HashSet::new();
        for rx in 0..4 {
            for tx in 0..4 {
                for sc in 0..64 {
                    let loc = map.location(rx, tx, sc);
                    assert!(seen.insert((loc.buffer, loc.address)));
                }
            }
        }
        assert_eq!(seen.len(), 16 * 64);
    }

    #[test]
    fn capacity_math() {
        let map = HMatrixMemoryMap::paper();
        assert_eq!(map.buffer_words(), 2048);
        // 4 buffers × 2048 words × 36 bits = 294,912 bits per array.
        assert_eq!(map.total_bits(), 294_912);
    }

    #[test]
    #[should_panic(expected = "exceeds segment depth")]
    fn overflow_subcarrier_rejected() {
        let _ = HMatrixMemoryMap::new(64, 36).location(0, 0, 64);
    }
}
