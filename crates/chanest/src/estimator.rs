//! The channel estimator: LTS averaging, per-subcarrier H assembly and
//! the full matrix-inversion pipeline.
//!
//! "Each subcarrier output is averaged from the two LTS frames ...
//! using an adder followed by right-shift logic. ... For each
//! subcarrier within the OFDM symbol a 4x4 complex matrix is obtained.
//! This is the channel matrix. For each burst of OFDM symbols an array
//! of 16 memories will be populated with the channel matrices."
//! (§IV.B)

use std::error::Error;
use std::fmt;

use mimo_fft::FixedFft;
use mimo_fixed::{CFx, CQ15, Q16};
use mimo_ofdm::preamble::lts_reference;
use mimo_ofdm::SubcarrierMap;

use crate::matrix::FxMat4;
use crate::rinv::invert_upper_triangular;
use crate::systolic::CordicQrd;
use crate::N_ANTENNAS;

/// Errors from channel estimation and inversion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChanestError {
    /// Unsupported FFT size.
    UnsupportedFftSize(usize),
    /// Wrong number of receive streams or LTS slots.
    BadSlotShape {
        /// Streams/slots expected (= antenna count).
        expected: usize,
        /// Streams/slots supplied.
        got: usize,
    },
    /// An LTS block had the wrong sample count.
    BadBlockLength {
        /// Expected samples (2·N: two LTS repetitions).
        expected: usize,
        /// Samples supplied.
        got: usize,
    },
    /// The channel matrix at some subcarrier is (numerically) singular:
    /// the R diagonal fell below the divider's input range.
    SingularChannel {
        /// Index of the offending diagonal entry.
        diagonal: usize,
    },
}

impl fmt::Display for ChanestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChanestError::UnsupportedFftSize(n) => write!(f, "unsupported FFT size {n}"),
            ChanestError::BadSlotShape { expected, got } => {
                write!(f, "expected {expected} streams/slots, got {got}")
            }
            ChanestError::BadBlockLength { expected, got } => {
                write!(f, "LTS block of {got} samples, expected {expected}")
            }
            ChanestError::SingularChannel { diagonal } => {
                write!(f, "channel matrix singular at R diagonal {diagonal}")
            }
        }
    }
}

impl Error for ChanestError {}

/// Per-subcarrier channel matrices — the "array of 16 memories".
#[derive(Debug, Clone)]
pub struct ChannelEstimate {
    occupied: Vec<i32>,
    h: Vec<FxMat4>,
}

impl ChannelEstimate {
    /// Logical indices of the occupied (estimated) subcarriers.
    pub fn occupied(&self) -> &[i32] {
        &self.occupied
    }

    /// The channel matrix for each occupied subcarrier, aligned with
    /// [`ChannelEstimate::occupied`]. `h[s][(i, k)]` is the path gain
    /// from TX antenna `k` to RX antenna `i` (including the known
    /// TX/RX chain gain — which is exactly what the equalizer needs).
    pub fn h_matrices(&self) -> &[FxMat4] {
        &self.h
    }

    /// Runs the full inversion pipeline on every subcarrier:
    /// QRD → R⁻¹ → R⁻¹·Qᴴ, returning the per-subcarrier `H⁻¹`
    /// ("channel estimate inverted matrices" memories of Fig 5).
    ///
    /// # Errors
    ///
    /// Returns [`ChanestError::SingularChannel`] if any subcarrier's
    /// matrix cannot be inverted.
    pub fn invert_all(&self, qrd: &CordicQrd) -> Result<Vec<FxMat4>, ChanestError> {
        self.h
            .iter()
            .map(|h| {
                let decomp = qrd.decompose(h);
                let r_inv = invert_upper_triangular(&decomp.r)?;
                Ok(r_inv.mul_mat(&decomp.q_h))
            })
            // phylint: allow(hot_transitive) -- matrix inversion runs once per burst preamble, never in the per-sample steady state
            .collect()
    }
}

/// The channel estimation block: consumes the four staggered LTS
/// fields (one per TX antenna) as seen by the four receive antennas and
/// produces a [`ChannelEstimate`].
#[derive(Debug, Clone)]
pub struct ChannelEstimator {
    fft: FixedFft,
    map: SubcarrierMap,
    lts_ref: Vec<i8>,
    /// 1/amplitude of the training symbols (the de-reference multiply).
    inv_amplitude: Q16,
}

impl ChannelEstimator {
    /// Creates an estimator for the given FFT size with the default
    /// training amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`ChanestError::UnsupportedFftSize`] for bad sizes.
    pub fn new(fft_size: usize) -> Result<Self, ChanestError> {
        Self::with_amplitude(fft_size, mimo_ofdm::preamble::DEFAULT_AMPLITUDE)
    }

    /// Creates an estimator matched to a custom training amplitude.
    ///
    /// # Errors
    ///
    /// Returns [`ChanestError::UnsupportedFftSize`] for bad sizes.
    pub fn with_amplitude(fft_size: usize, amplitude: f64) -> Result<Self, ChanestError> {
        let map = SubcarrierMap::new(fft_size)
            .map_err(|_| ChanestError::UnsupportedFftSize(fft_size))?;
        let fft =
            FixedFft::new(fft_size).map_err(|_| ChanestError::UnsupportedFftSize(fft_size))?;
        let lts_ref = lts_reference(&map);
        Ok(Self {
            fft,
            map,
            lts_ref,
            inv_amplitude: Q16::from_f64(1.0 / amplitude),
        })
    }

    /// The subcarrier allocation in use.
    pub fn map(&self) -> &SubcarrierMap {
        &self.map
    }

    /// Estimates the channel from the received LTS fields.
    ///
    /// `lts_blocks[rx][tx_slot]` holds the `2·N` samples of the two
    /// LTS repetitions (guard already stripped) received on antenna
    /// `rx` during TX antenna `tx_slot`'s preamble slot (Fig 2).
    ///
    /// Generic over borrowed views: pass owned `Vec<Vec<Vec<CQ15>>>`
    /// storage or zero-copy `[[&[CQ15]; 4]; 4]` slices into the raw
    /// receive streams — the receiver hot path uses the latter so no
    /// LTS samples are ever copied.
    ///
    /// Per carrier: both repetitions are transformed, averaged with the
    /// adder + right-shift, and divided by the known ±1 training value
    /// (a sign flip and a constant multiply).
    ///
    /// # Errors
    ///
    /// Returns [`ChanestError::BadSlotShape`]/[`ChanestError::BadBlockLength`]
    /// on malformed input.
    pub fn estimate<R, B>(&self, lts_blocks: &[R]) -> Result<ChannelEstimate, ChanestError>
    where
        R: AsRef<[B]>,
        B: AsRef<[CQ15]>,
    {
        let n = self.map.fft_size();
        if lts_blocks.len() != N_ANTENNAS {
            return Err(ChanestError::BadSlotShape {
                expected: N_ANTENNAS,
                got: lts_blocks.len(),
            });
        }
        for per_rx in lts_blocks {
            let per_rx = per_rx.as_ref();
            if per_rx.len() != N_ANTENNAS {
                return Err(ChanestError::BadSlotShape {
                    expected: N_ANTENNAS,
                    got: per_rx.len(),
                });
            }
            for block in per_rx {
                if block.as_ref().len() != 2 * n {
                    return Err(ChanestError::BadBlockLength {
                        expected: 2 * n,
                        got: block.as_ref().len(),
                    });
                }
            }
        }

        let occupied = self.map.occupied_indices();
        // averaged[(rx * 4 + slot) * n_occ + occupied_idx], flat.
        let n_occ = occupied.len();
        // phylint: allow(hot_transitive) -- scratch rows sized once per preamble estimate, not per sample
        let mut averaged = vec![CQ15::ZERO; N_ANTENNAS * N_ANTENNAS * n_occ];
        // phylint: allow(hot_transitive) -- scratch rows sized once per preamble estimate, not per sample
        let mut first = vec![CQ15::ZERO; n];
        // phylint: allow(hot_transitive) -- scratch rows sized once per preamble estimate, not per sample
        let mut second = vec![CQ15::ZERO; n];
        for (rx, per_rx) in lts_blocks.iter().enumerate() {
            for (slot, block) in per_rx.as_ref().iter().enumerate() {
                let block = block.as_ref();
                // Block length was validated to 2·N above; an FFT
                // length complaint can only mean that check and this
                // call disagree, which surfaces as the same typed
                // error instead of a panic.
                let bad_len = |_| ChanestError::BadBlockLength {
                    expected: 2 * n,
                    got: block.len(),
                };
                self.fft
                    .fft_into(&block[..n], &mut first)
                    .map_err(bad_len)?;
                self.fft
                    .fft_into(&block[n..], &mut second)
                    .map_err(bad_len)?;
                let base = (rx * N_ANTENNAS + slot) * n_occ;
                for (s, &l) in occupied.iter().enumerate() {
                    let bin = self.map.bin(l);
                    // "averaged using an adder followed by right-shift
                    // logic"
                    averaged[base + s] = (first[bin] + second[bin]).shr_round(1);
                }
            }
        }

        let h = (0..n_occ)
            .map(|s| {
                FxMat4::from_fn(|rx, tx| {
                    let y: CFx<16> = averaged[(rx * N_ANTENNAS + tx) * n_occ + s].convert();
                    let sign = self.lts_ref[s];
                    let v = if sign >= 0 { y } else { -y };
                    v.scale(self.inv_amplitude)
                })
            })
            // phylint: allow(hot_transitive) -- gathers the per-burst channel matrix once per preamble
            .collect();

        Ok(ChannelEstimate {
            occupied,
            h,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;
    use mimo_fixed::Cf64;
    use mimo_ofdm::preamble::lts_time;

    /// Simulates the staggered LTS preamble through a flat channel
    /// `h[rx][tx]` and returns the estimator's input blocks.
    fn lts_through_channel(h: &Mat4, fft_size: usize) -> Vec<Vec<Vec<CQ15>>> {
        let fft = FixedFft::new(fft_size).unwrap();
        let map = SubcarrierMap::new(fft_size).unwrap();
        let field = lts_time(&fft, &map, 0.5).unwrap();
        // Strip the N/2 guard: keep the two repetitions.
        let reps = &field[fft_size / 2..];
        (0..N_ANTENNAS)
            .map(|rx| {
                (0..N_ANTENNAS)
                    .map(|tx| {
                        reps.iter()
                            .map(|&s| {
                                (h[(rx, tx)] * Cf64::from_fixed(s))
                                    .to_fixed::<15>()
                                    .saturate_bits(16)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    /// Known end-to-end gain of the LTS estimation path: IFFT (2/N),
    /// FFT (N >> fwd), so H_est = h · 2^(1 − forward_shift).
    fn known_gain(fft: &FixedFft) -> f64 {
        2.0 / (1u64 << fft.scaling().forward_shift) as f64
    }

    #[test]
    fn recovers_identity_channel() {
        let est = ChannelEstimator::new(64).unwrap();
        let h = Mat4::identity();
        let blocks = lts_through_channel(&h, 64);
        let ce = est.estimate(&blocks).unwrap();
        let g = known_gain(&FixedFft::new(64).unwrap());
        for (s, m) in ce.h_matrices().iter().enumerate() {
            let err = m.to_f64().max_distance(&Mat4::from_fn(|r, c| {
                if r == c { Cf64::new(g, 0.0) } else { Cf64::ZERO }
            }));
            assert!(err < 6e-3, "carrier {s}: err {err}");
        }
    }

    #[test]
    fn recovers_mixing_channel() {
        let est = ChannelEstimator::new(64).unwrap();
        let h = Mat4::from_fn(|r, c| {
            Cf64::new(0.3 * (r as f64 - c as f64), 0.2 * (r + c) as f64 * 0.5)
        });
        let blocks = lts_through_channel(&h, 64);
        let ce = est.estimate(&blocks).unwrap();
        let g = known_gain(&FixedFft::new(64).unwrap());
        let expect = Mat4::from_fn(|r, c| h[(r, c)].scale(g));
        for m in ce.h_matrices() {
            assert!(m.to_f64().max_distance(&expect) < 8e-3);
        }
    }

    #[test]
    fn inversion_pipeline_inverts_estimates() {
        let est = ChannelEstimator::new(64).unwrap();
        // Well-conditioned channel.
        let h = Mat4::from_fn(|r, c| {
            if r == c {
                Cf64::new(0.9, 0.2)
            } else {
                Cf64::new(0.1 * (r as f64 - c as f64), -0.1)
            }
        });
        let blocks = lts_through_channel(&h, 64);
        let ce = est.estimate(&blocks).unwrap();
        let inverses = ce.invert_all(&CordicQrd::new()).unwrap();
        for (m, inv) in ce.h_matrices().iter().zip(&inverses) {
            let prod = inv.mul_mat(m).to_f64();
            let err = prod.max_distance(&Mat4::identity());
            assert!(err < 0.05, "||H⁻¹H − I|| = {err}");
        }
    }

    #[test]
    fn estimate_count_matches_occupied_carriers() {
        let est = ChannelEstimator::new(64).unwrap();
        let blocks = lts_through_channel(&Mat4::identity(), 64);
        let ce = est.estimate(&blocks).unwrap();
        assert_eq!(ce.h_matrices().len(), 52);
        assert_eq!(ce.occupied().len(), 52);
    }

    #[test]
    fn rejects_malformed_input() {
        let est = ChannelEstimator::new(64).unwrap();
        assert!(matches!(
            est.estimate(&vec![vec![vec![CQ15::ZERO; 128]; 4]; 3]),
            Err(ChanestError::BadSlotShape { got: 3, .. })
        ));
        assert!(matches!(
            est.estimate(&vec![vec![vec![CQ15::ZERO; 64]; 4]; 4]),
            Err(ChanestError::BadBlockLength { got: 64, .. })
        ));
    }

    #[test]
    fn singular_channel_detected_in_inversion() {
        let est = ChannelEstimator::new(64).unwrap();
        // Rank-1 channel: every RX sees the same mix.
        let h = Mat4::from_fn(|_, c| Cf64::new(0.3 + 0.1 * c as f64, 0.0));
        let blocks = lts_through_channel(&h, 64);
        let ce = est.estimate(&blocks).unwrap();
        assert!(matches!(
            ce.invert_all(&CordicQrd::new()),
            Err(ChanestError::SingularChannel { .. })
        ));
    }

    #[test]
    fn averaging_suppresses_repetition_noise() {
        // Perturb the two repetitions in opposite directions; the
        // average must cancel the perturbation.
        let est = ChannelEstimator::new(64).unwrap();
        let clean = lts_through_channel(&Mat4::identity(), 64);
        let mut noisy = clean.clone();
        for per_rx in &mut noisy {
            for block in per_rx {
                for (i, s) in block.iter_mut().enumerate() {
                    // Same structured perturbation on both repetitions,
                    // opposite signs: spreads across all bins and must
                    // cancel in the average.
                    let base = 0.002 * (((i % 64) % 7) as f64 - 3.0) / 3.0;
                    let delta = CQ15::from_f64(base, -base);
                    *s = if i < 64 { *s + delta } else { *s - delta };
                }
            }
        }
        let ce_clean = est.estimate(&clean).unwrap();
        let ce_noisy = est.estimate(&noisy).unwrap();
        for (a, b) in ce_clean.h_matrices().iter().zip(ce_noisy.h_matrices()) {
            assert!(a.to_f64().max_distance(&b.to_f64()) < 1e-3);
        }
    }
}
