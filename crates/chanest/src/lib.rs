//! Channel estimation and matrix inversion — the paper's centerpiece.
//!
//! The receiver (§IV.B) estimates a 4×4 complex channel matrix **per
//! subcarrier** from the staggered LTS preamble, then inverts every one
//! of them:
//!
//! > "Matrix inversion is a computationally intensive calculation and
//! > in order to implement this efficiently, QR decomposition is
//! > performed on the channel matrix before inversion. ... The channel
//! > matrix H is decomposed to a Q matrix and an upper triangle matrix
//! > R using a massive systolic array of CORDIC elements."
//!
//! * [`Mat4`] / [`FxMat4`] — 4×4 complex matrices in `f64` (reference)
//!   and Q2.16 fixed point (datapath).
//! * [`qr_givens_f64`] — double-precision Givens QR, the oracle.
//! * [`CordicQrd`] — the three-angle complex-rotation systolic array
//!   (4 boundary cells × 2 vectoring CORDICs, 6+16 internal cells × 3
//!   rotation CORDICs), functionally bit-accurate; plus the Fig 8
//!   [`QrdScheduler`] and the latency model (Experiment F7: 20-cycle
//!   CORDICs → 440-cycle datapath).
//! * [`invert_upper_triangular`] — the R⁻¹ back-substitution block,
//!   implementing the paper's ten equations verbatim.
//! * [`ChannelEstimator`] — LTS averaging (`+ ÷2`), per-subcarrier H
//!   assembly, and the full H⁻¹ = R⁻¹·Qᵀ pipeline over all carriers.

mod cycle_array;
mod estimator;
mod matrix;
mod memory_map;
mod qr_float;
mod rinv;
mod systolic;

pub use cycle_array::SystolicQrdArray;
pub use estimator::{ChanestError, ChannelEstimate, ChannelEstimator};
pub use memory_map::{HMatrixMemoryMap, MemoryLocation};
pub use matrix::{FxMat4, Mat4};
pub use qr_float::qr_givens_f64;
pub use rinv::invert_upper_triangular;
pub use systolic::{CordicQrd, QrDecomposition, QrdScheduler, ScheduledRead};

/// Antennas on each side of the link (the paper's 4×4 system).
pub const N_ANTENNAS: usize = 4;

/// The QRD datapath latency model: the paper reports "a data-path
/// latency of 440 clock cycles" from 20-cycle CORDIC elements, i.e. 22
/// CORDIC stages along the critical path. For an n×n array that path
/// is the input skew of the last matrix element (`n(n+1)/2` beats) plus
/// a boundary + internal CORDIC chain (`3n` stages): `n(n+1)/2 + 3n`,
/// which is 22 for n = 4.
pub fn qrd_datapath_latency_cycles(n: usize, cordic_latency: u32) -> u32 {
    ((n * (n + 1) / 2 + 3 * n) as u32) * cordic_latency
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_reproduces_paper_number() {
        assert_eq!(
            qrd_datapath_latency_cycles(N_ANTENNAS, mimo_cordic::CORDIC_LATENCY_CYCLES),
            440
        );
    }
}
