//! Double-precision Givens QR — the oracle for the CORDIC array.

use mimo_fixed::Cf64;

use crate::matrix::Mat4;

/// QR decomposition by complex Givens rotations, mirroring the exact
/// operation sequence of the systolic array (phase-zero the pivot pair,
/// then a real Givens), so the fixed-point array can be validated
/// element-by-element against it.
///
/// Returns `(q, r)` with `q` unitary, `r` upper triangular with real
/// non-negative diagonal, and `q * r ≈ input`.
///
/// # Examples
///
/// ```
/// use mimo_chanest::{qr_givens_f64, Mat4};
/// use mimo_fixed::Cf64;
///
/// let h = Mat4::from_fn(|r, c| Cf64::new((r * 4 + c) as f64 * 0.1, 0.05));
/// let (q, r) = qr_givens_f64(&h);
/// assert!((q * r).max_distance(&h) < 1e-12);
/// ```
pub fn qr_givens_f64(h: &Mat4) -> (Mat4, Mat4) {
    // Work on the augmented rows [H | I]; accumulate U·[H|I] = [R | Q^H].
    let mut a = *h;
    let mut u = Mat4::identity();

    for k in 0..4 {
        // Phase-zero the diagonal element first (boundary cell's first
        // vectoring CORDIC acting on the stored row).
        phase_zero(&mut a, &mut u, k, k);
        for i in (k + 1)..4 {
            // Phase-zero the element to eliminate.
            phase_zero(&mut a, &mut u, i, k);
            // Real Givens between rows k and i zeroing a[i][k].
            let x = a[(k, k)].re;
            let y = a[(i, k)].re;
            let hyp = x.hypot(y);
            if hyp == 0.0 {
                continue;
            }
            let c = x / hyp;
            let s = y / hyp;
            for j in 0..4 {
                let top = a[(k, j)];
                let bot = a[(i, j)];
                a[(k, j)] = top.scale(c) + bot.scale(s);
                a[(i, j)] = bot.scale(c) - top.scale(s);
                let ut = u[(k, j)];
                let ub = u[(i, j)];
                u[(k, j)] = ut.scale(c) + ub.scale(s);
                u[(i, j)] = ub.scale(c) - ut.scale(s);
            }
        }
    }
    // u = Q^H; a = R.
    (u.hermitian(), a)
}

/// Rotates row `row` by `e^{-j·arg(a[row][col])}` so that element
/// becomes real non-negative (the vectoring CORDIC's phase output
/// applied across the row).
fn phase_zero(a: &mut Mat4, u: &mut Mat4, row: usize, col: usize) {
    let v = a[(row, col)];
    if v.norm() == 0.0 {
        return;
    }
    let phase = Cf64::from_polar(1.0, -v.arg());
    for j in 0..4 {
        a[(row, j)] *= phase;
        u[(row, j)] *= phase;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;

    fn rand_matrix(seed: u64) -> Mat4 {
        // Small deterministic LCG so the oracle has no rand dependency.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        Mat4::from_fn(|_, _| Cf64::new(next(), next()))
    }

    #[test]
    fn qr_reconstructs_input() {
        for seed in 1..20 {
            let h = rand_matrix(seed);
            let (q, r) = qr_givens_f64(&h);
            assert!(
                (q * r).max_distance(&h) < 1e-12,
                "seed {seed}: ||QR - H|| too large"
            );
        }
    }

    #[test]
    fn q_is_unitary() {
        for seed in 1..20 {
            let h = rand_matrix(seed);
            let (q, _) = qr_givens_f64(&h);
            let qhq = q.hermitian() * q;
            assert!(qhq.max_distance(&Mat4::identity()) < 1e-12, "seed {seed}");
        }
    }

    #[test]
    fn r_is_upper_triangular_with_real_nonneg_diagonal() {
        for seed in 1..20 {
            let h = rand_matrix(seed);
            let (_, r) = qr_givens_f64(&h);
            for row in 0..4 {
                for col in 0..row {
                    assert!(r[(row, col)].norm() < 1e-12, "seed {seed} ({row},{col})");
                }
                assert!(r[(row, row)].im.abs() < 1e-12, "seed {seed} diag imag");
                assert!(r[(row, row)].re >= -1e-12, "seed {seed} diag sign");
            }
        }
    }

    #[test]
    fn identity_decomposes_trivially() {
        let (q, r) = qr_givens_f64(&Mat4::identity());
        assert!(q.max_distance(&Mat4::identity()) < 1e-12);
        assert!(r.max_distance(&Mat4::identity()) < 1e-12);
    }

    #[test]
    fn singular_matrix_does_not_panic() {
        // Rank-1 matrix: QR still well-defined.
        let h = Mat4::from_fn(|r, _| Cf64::new(r as f64 + 1.0, 0.0));
        let (q, r) = qr_givens_f64(&h);
        assert!((q * r).max_distance(&h) < 1e-12);
    }
}
