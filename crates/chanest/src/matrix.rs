//! 4×4 complex matrices: `f64` reference and Q2.16 datapath forms.

use std::fmt;
use std::ops::{Index, IndexMut, Mul};

use mimo_fixed::{CFx, CQ16, Cf64};

/// A 4×4 complex matrix in double precision — the reference domain for
/// validating the fixed-point datapath.
///
/// # Examples
///
/// ```
/// use mimo_chanest::Mat4;
/// use mimo_fixed::Cf64;
///
/// let i = Mat4::identity();
/// let a = Mat4::from_fn(|r, c| Cf64::new((r + c) as f64, 0.0));
/// assert_eq!((i * a)[(2, 3)], a[(2, 3)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat4 {
    m: [[Cf64; 4]; 4],
}

impl Mat4 {
    /// The zero matrix.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        Self::from_fn(|r, c| if r == c { Cf64::ONE } else { Cf64::ZERO })
    }

    /// Builds a matrix element-wise.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> Cf64) -> Self {
        let mut m = [[Cf64::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = f(r, c);
            }
        }
        Self { m }
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn hermitian(&self) -> Self {
        Self::from_fn(|r, c| self.m[c][r].conj())
    }

    /// Matrix–vector product `self · v`.
    pub fn mul_vec(&self, v: &[Cf64; 4]) -> [Cf64; 4] {
        let mut out = [Cf64::ZERO; 4];
        for (r, o) in out.iter_mut().enumerate() {
            for (c, &x) in v.iter().enumerate() {
                *o += self.m[r][c] * x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.m
            .iter()
            .flatten()
            .map(|c| c.norm_sqr())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum elementwise distance to another matrix.
    pub fn max_distance(&self, other: &Self) -> f64 {
        let mut worst: f64 = 0.0;
        for r in 0..4 {
            for c in 0..4 {
                worst = worst.max((self.m[r][c] - other.m[r][c]).norm());
            }
        }
        worst
    }

    /// Quantizes to the Q2.16 datapath form.
    pub fn to_fixed(&self) -> FxMat4 {
        FxMat4::from_fn(|r, c| self.m[r][c].to_fixed::<16>())
    }
}

impl Index<(usize, usize)> for Mat4 {
    type Output = Cf64;
    fn index(&self, (r, c): (usize, usize)) -> &Cf64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat4 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Cf64 {
        &mut self.m[r][c]
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        Mat4::from_fn(|r, c| {
            let mut acc = Cf64::ZERO;
            for k in 0..4 {
                acc += self.m[r][k] * rhs.m[k][c];
            }
            acc
        })
    }
}

impl fmt::Display for Mat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            for cell in row {
                write!(f, "{cell:>24}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A 4×4 complex matrix on the Q2.16 CORDIC datapath.
///
/// The backing [`CFx`] words are `i64`-wide, so intermediate products
/// keep guard bits exactly as the FPGA's wide accumulators do; callers
/// clamp to bus widths where the architecture does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FxMat4 {
    m: [[CQ16; 4]; 4],
}

impl FxMat4 {
    /// The zero matrix.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        Self::from_fn(|r, c| if r == c { CFx::ONE } else { CFx::ZERO })
    }

    /// Builds a matrix element-wise.
    pub fn from_fn(mut f: impl FnMut(usize, usize) -> CQ16) -> Self {
        let mut m = [[CFx::ZERO; 4]; 4];
        for (r, row) in m.iter_mut().enumerate() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = f(r, c);
            }
        }
        Self { m }
    }

    /// Conjugate transpose.
    pub fn hermitian(&self) -> Self {
        Self::from_fn(|r, c| self.m[c][r].conj())
    }

    /// Matrix–matrix product (the paper's "4x4 matrix multiplication
    /// block" computing R⁻¹ · Qᵀ).
    pub fn mul_mat(&self, rhs: &FxMat4) -> FxMat4 {
        FxMat4::from_fn(|r, c| {
            let mut acc = CFx::ZERO;
            for k in 0..4 {
                acc += self.m[r][k] * rhs.m[k][c];
            }
            acc
        })
    }

    /// Matrix–vector product — the per-subcarrier MIMO decode
    /// `y = H⁻¹ · r`.
    pub fn mul_vec(&self, v: &[CQ16; 4]) -> [CQ16; 4] {
        let mut out = [CFx::ZERO; 4];
        for (r, o) in out.iter_mut().enumerate() {
            for (c, &x) in v.iter().enumerate() {
                *o += self.m[r][c] * x;
            }
        }
        out
    }

    /// Lifts to the `f64` reference domain.
    pub fn to_f64(&self) -> Mat4 {
        Mat4::from_fn(|r, c| Cf64::from_fixed(self.m[r][c]))
    }
}

impl Index<(usize, usize)> for FxMat4 {
    type Output = CQ16;
    fn index(&self, (r, c): (usize, usize)) -> &CQ16 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for FxMat4 {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut CQ16 {
        &mut self.m[r][c]
    }
}

impl fmt::Display for FxMat4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat4 {
        Mat4::from_fn(|r, c| Cf64::new(0.1 * (r as f64 + 1.0), -0.05 * c as f64))
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = sample();
        assert!(a.max_distance(&(Mat4::identity() * a)) < 1e-15);
        assert!(a.max_distance(&(a * Mat4::identity())) < 1e-15);
    }

    #[test]
    fn hermitian_involution() {
        let a = sample();
        assert!(a.max_distance(&a.hermitian().hermitian()) < 1e-15);
    }

    #[test]
    fn mul_vec_matches_mul_mat_column() {
        let a = sample();
        let v = [Cf64::ONE, Cf64::I, Cf64::new(-1.0, 0.0), Cf64::ZERO];
        let got = a.mul_vec(&v);
        for r in 0..4 {
            let mut expect = Cf64::ZERO;
            for c in 0..4 {
                expect += a[(r, c)] * v[c];
            }
            assert!((got[r] - expect).norm() < 1e-15);
        }
    }

    #[test]
    fn fixed_roundtrip_accuracy() {
        let a = sample();
        let back = a.to_fixed().to_f64();
        assert!(a.max_distance(&back) < 1e-4);
    }

    #[test]
    fn fixed_multiply_matches_float() {
        let a = sample();
        let b = Mat4::from_fn(|r, c| Cf64::new(0.03 * c as f64, 0.07 * r as f64));
        let fixed = a.to_fixed().mul_mat(&b.to_fixed()).to_f64();
        let float = a * b;
        assert!(fixed.max_distance(&float) < 1e-3);
    }

    #[test]
    fn frobenius_of_identity() {
        assert!((Mat4::identity().frobenius() - 2.0).abs() < 1e-15);
    }
}
