//! The CORDIC systolic QR-decomposition array (Figs 6–8).
//!
//! Boundary cells hold the (real) R diagonal and run **two vectoring
//! CORDICs** per incoming element: the first extracts the element's
//! phase, the second performs the Givens vectoring against the stored
//! diagonal. Internal cells hold one R (or Qᴴ) element and run **three
//! rotation CORDICs**: one de-phases the incoming value, two apply the
//! real Givens to the (stored, incoming) pair — the "three angle
//! complex rotation algorithm" of the paper.
//!
//! Feeding the identity matrix through the appended 4×4 array of
//! internal cells (Fig 7) accumulates Qᴴ, so that after all four rows
//! of H have entered, the cells hold `U·[H | I] = [R | Qᴴ]`.

use mimo_cordic::Cordic;
use mimo_fixed::{CFx, CQ16, Q16};

use crate::matrix::FxMat4;
use crate::N_ANTENNAS;

/// Result of one QR decomposition: `r` upper triangular with real
/// non-negative diagonal, `q_h` the conjugate-transposed Q, such that
/// `q_h · h ≈ r` and `q_h` is unitary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QrDecomposition {
    /// The upper-triangular factor.
    pub r: FxMat4,
    /// Q conjugate-transposed (what the array accumulates directly).
    pub q_h: FxMat4,
}

/// The functional model of the systolic array: bit-identical arithmetic
/// to the cell pipeline, evaluated in dataflow order.
///
/// # Examples
///
/// ```
/// use mimo_chanest::{CordicQrd, Mat4};
/// use mimo_fixed::Cf64;
///
/// let h = Mat4::from_fn(|r, c| Cf64::new(0.2 * (r as f64 - 1.5), 0.1 * c as f64));
/// let qrd = CordicQrd::new();
/// let result = qrd.decompose(&h.to_fixed());
/// // Q^H · H reconstructs R.
/// let qh_h = result.q_h.mul_mat(&h.to_fixed()).to_f64();
/// assert!(qh_h.max_distance(&result.r.to_f64()) < 6e-3);
/// ```
#[derive(Debug, Clone)]
pub struct CordicQrd {
    cordic: Cordic,
}

impl Default for CordicQrd {
    fn default() -> Self {
        Self::new()
    }
}

impl CordicQrd {
    /// Creates the array with the paper's 20-cycle CORDIC elements.
    pub fn new() -> Self {
        Self {
            cordic: Cordic::new(),
        }
    }

    /// Creates the array with custom CORDIC precision (the iteration
    /// count knob used by the accuracy-ablation experiment).
    pub fn with_cordic(cordic: Cordic) -> Self {
        Self { cordic }
    }

    /// Number of boundary cells (diagonal): 4, each two vectoring
    /// CORDICs — "This array consists of four boundary cells and six
    /// internal cells" for the R factor.
    pub fn boundary_cells(&self) -> usize {
        N_ANTENNAS
    }

    /// Internal cells in the R array (strictly-upper triangle): 6.
    pub fn r_internal_cells(&self) -> usize {
        N_ANTENNAS * (N_ANTENNAS - 1) / 2
    }

    /// Internal cells in the Q array (Fig 7): a full 4×4 grid.
    pub fn q_internal_cells(&self) -> usize {
        N_ANTENNAS * N_ANTENNAS
    }

    /// Total CORDIC engines: 2 per boundary + 3 per internal cell.
    pub fn total_cordics(&self) -> usize {
        2 * self.boundary_cells() + 3 * (self.r_internal_cells() + self.q_internal_cells())
    }

    /// Decomposes a channel matrix. Always succeeds: rank-deficient
    /// inputs yield zero diagonal entries in `r` (the R-inverse stage
    /// is where singularity becomes an error).
    pub fn decompose(&self, h: &FxMat4) -> QrDecomposition {
        const W: usize = 2 * N_ANTENNAS;
        // cells[k][j]: array row k; columns 0..4 = R part, 4..8 = Q part.
        let mut cells = [[CFx::<16>::ZERO; W]; N_ANTENNAS];

        for i in 0..N_ANTENNAS {
            // Input row i of [H | I] enters from the top of the array.
            let mut x: [CQ16; W] = [CFx::ZERO; W];
            for (c, slot) in x.iter_mut().take(N_ANTENNAS).enumerate() {
                *slot = h[(i, c)];
            }
            x[N_ANTENNAS + i] = CFx::ONE;

            for k in 0..N_ANTENNAS {
                // Boundary cell (k, k): two vectoring CORDICs.
                let incoming = x[k];
                let v_phase = self.cordic.vector(incoming.re, incoming.im);
                let r_kk = cells[k][k].re;
                let v_givens = self.cordic.vector(r_kk, v_phase.magnitude);
                cells[k][k] = CFx::new(v_givens.magnitude, Q16::ZERO);
                x[k] = CFx::ZERO; // absorbed
                let phi = v_phase.angle;
                let theta = v_givens.angle;

                // Internal cells (k, j): three rotation CORDICs each.
                for j in (k + 1)..W {
                    let xin = x[j];
                    // CORDIC 1: de-phase the incoming value by −φ.
                    let dephased = self.cordic.rotate(xin.re, xin.im, -phi);
                    // CORDICs 2 & 3: real Givens on (stored, incoming)
                    // pairs — re and im lanes in parallel.
                    let z = cells[k][j];
                    let lane_re = self.cordic.rotate(z.re, dephased.x, -theta);
                    let lane_im = self.cordic.rotate(z.im, dephased.y, -theta);
                    cells[k][j] = CFx::new(lane_re.x, lane_im.x);
                    x[j] = CFx::new(lane_re.y, lane_im.y);
                }
            }
        }

        let r = FxMat4::from_fn(|k, j| if j >= k { cells[k][j] } else { CFx::ZERO });
        let q_h = FxMat4::from_fn(|k, j| cells[k][N_ANTENNAS + j]);
        QrDecomposition { r, q_h }
    }

    /// Event-driven latency measurement of the pipelined array, in
    /// clock cycles: every CORDIC is 20 cycles, matrix elements enter
    /// on the Fig 8 diagonal wavefront (one beat apart), the identity
    /// trails H by the array width, and angle buses are pipelined
    /// alongside the data. This is the "measured" counterpart of
    /// [`crate::qrd_datapath_latency_cycles`].
    pub fn measured_latency_cycles(&self) -> u32 {
        let beat = self.cordic.latency_cycles();
        let boundary_latency = 2 * beat; // two serial vectoring CORDICs
        let internal_latency = 2 * beat; // phase CORDIC + parallel Givens pair
        let n = N_ANTENNAS;
        let w = 2 * n;

        // arrive[i][j]: time element j of input row i reaches the
        // current array row. Entry follows the Fig 8 diagonal
        // wavefront: element (i, j) of [H | I] enters at beat·(i + j).
        let mut arrive = vec![vec![0u32; w]; n];
        for (i, row) in arrive.iter_mut().enumerate() {
            for (j, t) in row.iter_mut().enumerate() {
                *t = beat * (i + j) as u32;
            }
        }
        let mut latest = 0u32;
        for k in 0..n {
            // Array row k: boundary cell on (absolute) column k,
            // internal cells on columns k+1..w.
            let mut boundary_free = 0u32;
            let mut cell_free = vec![0u32; w];
            #[allow(clippy::needless_range_loop)] // `i` walks rows of `arrive` while mutating later rows
            for i in 0..n {
                let start_b = arrive[i][k].max(boundary_free);
                let fin_b = start_b + boundary_latency;
                boundary_free = fin_b;
                latest = latest.max(fin_b);
                for j in (k + 1)..w {
                    let start = fin_b.max(arrive[i][j]).max(cell_free[j]);
                    let fin = start + internal_latency;
                    cell_free[j] = fin;
                    arrive[i][j] = fin; // south input to array row k+1
                    latest = latest.max(fin);
                }
            }
        }
        latest
    }
}

/// One scheduled read of the channel-matrix memories (Fig 8 dataflow,
/// §IV.B scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledRead {
    /// Clock cycle of the read.
    pub cycle: u64,
    /// Which systolic-array column consumes the value.
    pub column: usize,
    /// Which of the 16 memories is addressed: `(row, col)` of H.
    pub memory: (usize, usize),
    /// Memory address = subcarrier index.
    pub subcarrier: usize,
    /// `true` when this read carries the init signal that "resets all
    /// the feedback elements of the current QRD cell".
    pub init: bool,
}

/// The channel-matrix read scheduler: walks the 16 H memories in
/// 20-address bursts (one burst per CORDIC latency), staggering each
/// array column one burst behind the previous — "Initially data is
/// only read from H00 memory ... The first 20 addresses are read in,
/// corresponding with the CORDIC latency. On the next clock cycle,
/// data from H01 memory is passed into the first QRD array column and
/// data from H10 memory is passed into the second column."
#[derive(Debug, Clone)]
pub struct QrdScheduler {
    n_subcarriers: usize,
    burst: usize,
}

impl QrdScheduler {
    /// Creates a scheduler over `n_subcarriers` channel matrices with
    /// the paper's burst length (20 = the CORDIC latency).
    pub fn new(n_subcarriers: usize) -> Self {
        Self {
            n_subcarriers,
            burst: mimo_cordic::CORDIC_LATENCY_CYCLES as usize,
        }
    }

    /// Burst length in addresses (equals the CORDIC latency).
    pub fn burst_len(&self) -> usize {
        self.burst
    }

    /// Generates the full read schedule for array column `column`
    /// (0..4). Memory order is row-major H00, H01, …, H33; each memory
    /// contributes `burst_len` consecutive subcarriers before the
    /// scheduler moves to the next; the whole 16-memory sweep repeats
    /// until all subcarriers are covered. Column `c` trails column 0 by
    /// `c` bursts.
    pub fn column_schedule(&self, column: usize) -> Vec<ScheduledRead> {
        assert!(column < N_ANTENNAS, "array has 4 columns");
        let n_mem = N_ANTENNAS * N_ANTENNAS;
        let mut reads = Vec::new();
        let groups = self.n_subcarriers.div_ceil(self.burst);
        for group in 0..groups {
            let base_sc = group * self.burst;
            let group_len = self.burst.min(self.n_subcarriers - base_sc);
            for mem in 0..n_mem {
                let burst_index = group * n_mem + mem + column;
                for a in 0..group_len {
                    let cycle = (burst_index * self.burst + a) as u64;
                    reads.push(ScheduledRead {
                        cycle,
                        column,
                        memory: (mem / N_ANTENNAS, mem % N_ANTENNAS),
                        subcarrier: base_sc + a,
                        // Init fires on the first read of each new
                        // subcarrier group entering column 0's H00.
                        init: mem == 0 && a == 0,
                    });
                }
            }
        }
        reads
    }

    /// Total cycles for the array to ingest every subcarrier's matrix.
    pub fn total_ingest_cycles(&self) -> u64 {
        let groups = self.n_subcarriers.div_ceil(self.burst);
        let n_mem = N_ANTENNAS * N_ANTENNAS;
        ((groups * n_mem + (N_ANTENNAS - 1)) * self.burst) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;
    use crate::qr_float::qr_givens_f64;
    use mimo_fixed::Cf64;

    fn rand_matrix(seed: u64) -> Mat4 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Mat4::from_fn(|_, _| Cf64::new(next(), next()))
    }

    #[test]
    fn qh_times_h_is_r() {
        let qrd = CordicQrd::new();
        for seed in 1..15 {
            let h = rand_matrix(seed);
            let result = qrd.decompose(&h.to_fixed());
            let qh_h = result.q_h.mul_mat(&h.to_fixed()).to_f64();
            let err = qh_h.max_distance(&result.r.to_f64());
            assert!(err < 8e-3, "seed {seed}: ||Q^H H - R|| = {err}");
        }
    }

    #[test]
    fn q_is_unitary_in_fixed_point() {
        let qrd = CordicQrd::new();
        for seed in 1..15 {
            let h = rand_matrix(seed);
            let result = qrd.decompose(&h.to_fixed());
            let q = result.q_h.hermitian();
            let qhq = result.q_h.mul_mat(&q).to_f64();
            let err = qhq.max_distance(&Mat4::identity());
            assert!(err < 8e-3, "seed {seed}: ||Q^H Q - I|| = {err}");
        }
    }

    #[test]
    fn r_is_upper_triangular_with_real_diagonal() {
        let qrd = CordicQrd::new();
        for seed in 1..15 {
            let h = rand_matrix(seed);
            let result = qrd.decompose(&h.to_fixed());
            let r = result.r.to_f64();
            for row in 0..4 {
                for col in 0..row {
                    assert_eq!(r[(row, col)], Cf64::ZERO, "below-diagonal ({row},{col})");
                }
                assert_eq!(r[(row, row)].im, 0.0, "diagonal imag ({row})");
                assert!(r[(row, row)].re >= 0.0, "diagonal sign ({row})");
            }
        }
    }

    #[test]
    fn matches_float_reference_r() {
        // The R factor is unique (given real non-negative diagonal), so
        // fixed and float must agree element-wise.
        let qrd = CordicQrd::new();
        for seed in 1..10 {
            let h = rand_matrix(seed);
            let fixed = qrd.decompose(&h.to_fixed()).r.to_f64();
            let (_, float_r) = qr_givens_f64(&h);
            let err = fixed.max_distance(&float_r);
            assert!(err < 8e-3, "seed {seed}: R mismatch {err}");
        }
    }

    #[test]
    fn identity_passes_through() {
        let qrd = CordicQrd::new();
        let result = qrd.decompose(&FxMat4::identity());
        let err_r = result.r.to_f64().max_distance(&Mat4::identity());
        let err_q = result.q_h.to_f64().max_distance(&Mat4::identity());
        assert!(err_r < 5e-3 && err_q < 5e-3, "R err {err_r}, Q err {err_q}");
    }

    #[test]
    fn cell_counts_match_paper() {
        let qrd = CordicQrd::new();
        assert_eq!(qrd.boundary_cells(), 4);
        assert_eq!(qrd.r_internal_cells(), 6);
        assert_eq!(qrd.q_internal_cells(), 16);
        // 2*4 + 3*22 = 74 CORDIC engines.
        assert_eq!(qrd.total_cordics(), 74);
    }

    #[test]
    fn measured_latency_matches_paper_440() {
        let qrd = CordicQrd::new();
        assert_eq!(qrd.measured_latency_cycles(), 440);
    }

    #[test]
    fn scheduler_first_bursts_match_fig8() {
        let sched = QrdScheduler::new(512);
        let col0 = sched.column_schedule(0);
        let col1 = sched.column_schedule(1);
        // First 20 reads: H00 addresses 0..19 into column 0.
        #[allow(clippy::needless_range_loop)] // `a` is both index and expected address
        for a in 0..20 {
            assert_eq!(col0[a].memory, (0, 0));
            assert_eq!(col0[a].subcarrier, a);
            assert_eq!(col0[a].cycle, a as u64);
        }
        // Next burst: col0 reads H01 while col1 starts H00 one burst
        // late — the staggered entry of Fig 8.
        assert_eq!(col0[20].memory, (0, 1));
        assert_eq!(col0[20].cycle, 20);
        assert_eq!(col1[0].memory, (0, 0));
        assert_eq!(col1[0].cycle, 20);
    }

    #[test]
    fn scheduler_init_fires_per_subcarrier_group() {
        let sched = QrdScheduler::new(64);
        let col0 = sched.column_schedule(0);
        let inits: Vec<&ScheduledRead> = col0.iter().filter(|r| r.init).collect();
        // 64 subcarriers / 20 per group = 4 groups (ceil).
        assert_eq!(inits.len(), 4);
        assert_eq!(inits[0].subcarrier, 0);
        assert_eq!(inits[1].subcarrier, 20);
        assert_eq!(inits[3].subcarrier, 60);
    }

    #[test]
    fn scheduler_covers_every_memory_and_subcarrier() {
        let n_sc = 48;
        let sched = QrdScheduler::new(n_sc);
        let col2 = sched.column_schedule(2);
        // Every (memory, subcarrier) pair must appear exactly once.
        let mut seen = std::collections::HashSet::new();
        for r in &col2 {
            assert!(seen.insert((r.memory, r.subcarrier)), "duplicate {r:?}");
        }
        assert_eq!(seen.len(), 16 * n_sc);
    }

    #[test]
    fn rank_deficient_matrix_does_not_panic() {
        let qrd = CordicQrd::new();
        let h = Mat4::from_fn(|r, _| Cf64::new(0.1 * (r as f64 + 1.0), 0.0));
        let result = qrd.decompose(&h.to_fixed());
        // Column space is rank 1: lower R rows ~ 0.
        let r = result.r.to_f64();
        assert!(r[(1, 1)].norm() < 0.02);
        assert!(r[(2, 2)].norm() < 0.02);
    }
}
