//! The R-matrix inverse block: back-substitution exactly as the
//! paper's equation list (§IV.B).
//!
//! ```text
//! R⁻¹(3,3) = 1/R(3,3)
//! R⁻¹(2,2) = 1/R(2,2)
//! R⁻¹(2,3) = −R(2,3)·R⁻¹(3,3)/R(2,2)
//! R⁻¹(1,1) = 1/R(1,1)
//! R⁻¹(1,2) = −R(1,2)·R⁻¹(2,2)/R(1,1)
//! R⁻¹(1,3) = −(R(1,2)·R⁻¹(2,3) + R(1,3)·R⁻¹(3,3))/R(1,1)
//! R⁻¹(0,0) = 1/R(0,0)
//! R⁻¹(0,1) = −R(0,1)·R⁻¹(1,1)/R(0,0)
//! R⁻¹(0,2) = −(R(0,1)·R⁻¹(1,2) + R(0,2)·R⁻¹(2,2))/R(0,0)
//! R⁻¹(0,3) = −(R(0,1)·R⁻¹(1,3) + R(0,2)·R⁻¹(2,3) + R(0,3)·R⁻¹(3,3))/R(0,0)
//! ```
//!
//! "This circuit is heavily pipelined with many shift registers
//! required as some of the terms require higher computation and also
//! because the calculation of some matrix terms require the result of
//! other matrix terms."

use mimo_fixed::{CFx, Q16};

use crate::estimator::ChanestError;
use crate::matrix::FxMat4;

/// Smallest diagonal magnitude the divider accepts; below this the
/// channel matrix is reported singular (a hardware implementation
/// would flag the same condition off the reciprocal unit's range).
const MIN_DIAGONAL: f64 = 1.0 / 512.0;

/// Inverts an upper-triangular matrix with real positive diagonal (the
/// R factor of the CORDIC QRD) by the paper's back-substitution
/// equations.
///
/// # Errors
///
/// Returns [`ChanestError::SingularChannel`] if any diagonal entry is
/// smaller than the divider's input range (the channel matrix was
/// rank-deficient at that subcarrier).
///
/// # Examples
///
/// ```
/// use mimo_chanest::{invert_upper_triangular, FxMat4};
/// use mimo_fixed::CFx;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let r_inv = invert_upper_triangular(&FxMat4::identity())?;
/// assert_eq!(r_inv.to_f64()[(0, 0)].re, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn invert_upper_triangular(r: &FxMat4) -> Result<FxMat4, ChanestError> {
    let min_raw = Q16::from_f64(MIN_DIAGONAL).raw();
    for k in 0..4 {
        if r[(k, k)].re.raw() < min_raw {
            return Err(ChanestError::SingularChannel { diagonal: k });
        }
    }
    let mut inv = FxMat4::zero();

    // Reciprocal of a real positive diagonal entry.
    let recip = |k: usize| -> CFx<16> {
        CFx::new(Q16::ONE.div(r[(k, k)].re), Q16::ZERO)
    };
    // Complex value divided by the (real) diagonal entry of row `k`.
    let div_diag = |v: CFx<16>, k: usize| -> CFx<16> {
        let d = r[(k, k)].re;
        CFx::new(v.re.div(d), v.im.div(d))
    };

    // The ten equations, in the paper's order.
    inv[(3, 3)] = recip(3);
    inv[(2, 2)] = recip(2);
    inv[(2, 3)] = div_diag(-(r[(2, 3)] * inv[(3, 3)]), 2);
    inv[(1, 1)] = recip(1);
    inv[(1, 2)] = div_diag(-(r[(1, 2)] * inv[(2, 2)]), 1);
    inv[(1, 3)] = div_diag(-(r[(1, 2)] * inv[(2, 3)] + r[(1, 3)] * inv[(3, 3)]), 1);
    inv[(0, 0)] = recip(0);
    inv[(0, 1)] = div_diag(-(r[(0, 1)] * inv[(1, 1)]), 0);
    inv[(0, 2)] = div_diag(-(r[(0, 1)] * inv[(1, 2)] + r[(0, 2)] * inv[(2, 2)]), 0);
    inv[(0, 3)] = div_diag(
        -(r[(0, 1)] * inv[(1, 3)] + r[(0, 2)] * inv[(2, 3)] + r[(0, 3)] * inv[(3, 3)]),
        0,
    );
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;
    use mimo_fixed::Cf64;

    fn upper(seed: u64) -> Mat4 {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Mat4::from_fn(|r, c| {
            if c > r {
                Cf64::new(next(), next())
            } else if c == r {
                Cf64::new(0.4 + next().abs(), 0.0) // real positive diag
            } else {
                Cf64::ZERO
            }
        })
    }

    #[test]
    fn r_times_r_inverse_is_identity() {
        for seed in 1..20 {
            let r = upper(seed);
            let inv = invert_upper_triangular(&r.to_fixed()).unwrap();
            let product = r.to_fixed().mul_mat(&inv).to_f64();
            let err = product.max_distance(&Mat4::identity());
            assert!(err < 2e-3, "seed {seed}: ||R·R⁻¹ − I|| = {err}");
        }
    }

    #[test]
    fn inverse_is_upper_triangular() {
        let r = upper(7);
        let inv = invert_upper_triangular(&r.to_fixed()).unwrap().to_f64();
        for row in 0..4 {
            for col in 0..row {
                assert_eq!(inv[(row, col)], Cf64::ZERO);
            }
        }
    }

    #[test]
    fn diagonal_is_reciprocal() {
        let r = upper(3);
        let inv = invert_upper_triangular(&r.to_fixed()).unwrap().to_f64();
        for k in 0..4 {
            assert!((inv[(k, k)].re - 1.0 / r[(k, k)].re).abs() < 1e-3);
            assert_eq!(inv[(k, k)].im, 0.0);
        }
    }

    #[test]
    fn singular_diagonal_reported() {
        let mut r = upper(5);
        r[(2, 2)] = Cf64::ZERO;
        let err = invert_upper_triangular(&r.to_fixed()).unwrap_err();
        assert_eq!(err, ChanestError::SingularChannel { diagonal: 2 });
        assert!(err.to_string().contains("2"));
    }

    #[test]
    fn identity_inverts_to_identity() {
        let inv = invert_upper_triangular(&FxMat4::identity()).unwrap();
        assert!(inv.to_f64().max_distance(&Mat4::identity()) < 1e-4);
    }
}
