//! Cycle-accurate, cell-level simulation of the QRD systolic array.
//!
//! [`CordicQrd::decompose`](crate::CordicQrd::decompose) evaluates the
//! array's arithmetic in dataflow order; this module actually *clocks*
//! the array: every boundary and internal cell is an independent unit
//! with input queues and a busy/latency model built from the same
//! CORDIC engines, inputs enter on the Fig 8 diagonal wavefront, and
//! results commit when their pipeline delay elapses.
//!
//! Because both models run the identical CORDIC operations in the
//! identical per-cell order, the clocked array must produce
//! **bit-identical** `[R | Qᴴ]` to the functional model — and its
//! measured completion time independently reproduces the paper's
//! 440-cycle datapath latency. Both properties are asserted in tests.

use std::collections::VecDeque;

use mimo_cordic::Cordic;
use mimo_fixed::{CFx, CQ16, Q16};

use crate::matrix::FxMat4;
use crate::systolic::QrDecomposition;
use crate::N_ANTENNAS;

const W: usize = 2 * N_ANTENNAS;

/// Angles emitted by a boundary cell for one input row.
#[derive(Debug, Clone, Copy)]
struct Angles {
    phi: Q16,
    theta: Q16,
}

/// An operation in flight inside a cell.
#[derive(Debug, Clone, Copy)]
struct InFlight<T> {
    done_at: u64,
    result: T,
}

/// A boundary cell: holds the real diagonal accumulator and runs two
/// serial vectoring CORDICs per input element.
#[derive(Debug, Clone)]
struct BoundaryCell {
    r: Q16,
    input: VecDeque<CQ16>,
    busy: Option<InFlight<(Q16, Angles)>>,
}

/// An internal cell: holds one complex `[R | Qᴴ]` element and runs a
/// phase rotator plus a Givens rotator pair per input element.
#[derive(Debug, Clone)]
struct InternalCell {
    z: CQ16,
    input: VecDeque<CQ16>,
    angles: VecDeque<Angles>,
    busy: Option<InFlight<(CQ16, CQ16)>>,
}

/// The clocked systolic array (R section + Q section, Figs 6–7).
///
/// # Examples
///
/// ```
/// use mimo_chanest::{CordicQrd, Mat4, SystolicQrdArray};
/// use mimo_fixed::Cf64;
///
/// let h = Mat4::from_fn(|r, c| Cf64::new(0.1 * (r as f64 + 1.0), -0.07 * c as f64));
/// let mut array = SystolicQrdArray::new();
/// let (result, cycles) = array.run(&h.to_fixed());
/// // The clocked array agrees bit-for-bit with the functional model
/// // and finishes in the paper's 440 cycles.
/// assert_eq!(result, CordicQrd::new().decompose(&h.to_fixed()));
/// assert_eq!(cycles, 440);
/// ```
#[derive(Debug, Clone)]
pub struct SystolicQrdArray {
    cordic: Cordic,
    beat: u64,
    boundary_latency: u64,
    internal_latency: u64,
    /// `boundary[k]` is cell (k, k).
    boundary: Vec<BoundaryCell>,
    /// `internal[k][j]` is cell (k, j) for j in k+1..W (R and Q parts).
    internal: Vec<Vec<InternalCell>>,
}

impl Default for SystolicQrdArray {
    fn default() -> Self {
        Self::new()
    }
}

impl SystolicQrdArray {
    /// Builds the array with the paper's 20-cycle CORDIC elements.
    pub fn new() -> Self {
        Self::with_cordic(Cordic::new())
    }

    /// Builds the array with a custom CORDIC engine (latency follows
    /// the engine's iteration count).
    pub fn with_cordic(cordic: Cordic) -> Self {
        let beat = u64::from(cordic.latency_cycles());
        let boundary = (0..N_ANTENNAS)
            .map(|_| BoundaryCell {
                r: Q16::ZERO,
                input: VecDeque::new(),
                busy: None,
            })
            .collect();
        let internal = (0..N_ANTENNAS)
            .map(|k| {
                ((k + 1)..W)
                    .map(|_| InternalCell {
                        z: CFx::ZERO,
                        input: VecDeque::new(),
                        angles: VecDeque::new(),
                        busy: None,
                    })
                    .collect()
            })
            .collect();
        Self {
            beat,
            // Two serial vectoring CORDICs.
            boundary_latency: 2 * beat,
            // Phase CORDIC, then the Givens pair in parallel.
            internal_latency: 2 * beat,
            cordic,
            boundary,
            internal,
        }
    }

    /// Clocks one channel matrix through the array. Returns the
    /// decomposition held in the cells after the last commit, and the
    /// cycle count from the first element's entry to that commit —
    /// the datapath latency the paper quotes as 440.
    pub fn run(&mut self, h: &FxMat4) -> (QrDecomposition, u64) {
        self.reset();
        // Fig 8 wavefront: element (i, j) of [H | I] enters the top of
        // column j at cycle beat·(i + j).
        let mut arrivals: Vec<(u64, usize, CQ16)> = Vec::with_capacity(N_ANTENNAS * W);
        for i in 0..N_ANTENNAS {
            for j in 0..W {
                let value = if j < N_ANTENNAS {
                    h[(i, j)]
                } else if j - N_ANTENNAS == i {
                    CFx::ONE
                } else {
                    CFx::ZERO
                };
                arrivals.push((self.beat * (i + j) as u64, j, value));
            }
        }
        arrivals.sort_by_key(|&(t, ..)| t);

        let mut next_arrival = 0usize;
        let mut now: u64 = 0;
        let mut last_commit: u64 = 0;
        let mut committed = 0usize;
        let total_ops = N_ANTENNAS * W; // one op per cell-visit per row
        let _ = total_ops;
        // Total commits: every row visits every array row: boundary
        // commits N per row-k, internals W-1-k each... simply run until
        // all queues drain and no op is in flight.
        loop {
            // Deliver top-of-array arrivals due this cycle.
            while next_arrival < arrivals.len() && arrivals[next_arrival].0 == now {
                let (_, j, value) = arrivals[next_arrival];
                self.deliver(0, j, value);
                next_arrival += 1;
            }

            // Commit finished operations (commit before start, so a
            // cell can begin its next op the same cycle its previous
            // one retires — back-to-back pipelining).
            for k in 0..N_ANTENNAS {
                if let Some(op) = self.boundary[k].busy {
                    if op.done_at == now {
                        let (new_r, angles) = op.result;
                        self.boundary[k].r = new_r;
                        self.boundary[k].busy = None;
                        for cell in &mut self.internal[k] {
                            cell.angles.push_back(angles);
                        }
                        committed += 1;
                        last_commit = now;
                    }
                }
                for idx in 0..self.internal[k].len() {
                    if let Some(op) = self.internal[k][idx].busy {
                        if op.done_at == now {
                            let (new_z, south) = op.result;
                            self.internal[k][idx].z = new_z;
                            self.internal[k][idx].busy = None;
                            let j = k + 1 + idx; // absolute column
                            if k + 1 < N_ANTENNAS {
                                self.deliver(k + 1, j, south);
                            }
                            committed += 1;
                            last_commit = now;
                        }
                    }
                }
            }

            // Start new operations where inputs are ready.
            for k in 0..N_ANTENNAS {
                if self.boundary[k].busy.is_none() {
                    if let Some(x) = self.boundary[k].input.pop_front() {
                        let v_phase = self.cordic.vector(x.re, x.im);
                        let v_givens = self.cordic.vector(self.boundary[k].r, v_phase.magnitude);
                        self.boundary[k].busy = Some(InFlight {
                            done_at: now + self.boundary_latency,
                            result: (
                                v_givens.magnitude,
                                Angles {
                                    phi: v_phase.angle,
                                    theta: v_givens.angle,
                                },
                            ),
                        });
                    }
                }
                for cell in &mut self.internal[k] {
                    if cell.busy.is_none() {
                        // Fire only when an input and its angle set are
                        // both queued; popping after the paired peek
                        // keeps the two queues in lockstep.
                        let (Some(&x), Some(&a)) = (cell.input.front(), cell.angles.front())
                        else {
                            continue;
                        };
                        cell.input.pop_front();
                        cell.angles.pop_front();
                        let dephased = self.cordic.rotate(x.re, x.im, -a.phi);
                        let lane_re = self.cordic.rotate(cell.z.re, dephased.x, -a.theta);
                        let lane_im = self.cordic.rotate(cell.z.im, dephased.y, -a.theta);
                        cell.busy = Some(InFlight {
                            done_at: now + self.internal_latency,
                            result: (
                                CFx::new(lane_re.x, lane_im.x),
                                CFx::new(lane_re.y, lane_im.y),
                            ),
                        });
                    }
                }
            }

            // Done when every input is delivered, queues are empty and
            // nothing is in flight.
            let idle = next_arrival == arrivals.len()
                && self.boundary.iter().all(|b| b.busy.is_none() && b.input.is_empty())
                && self
                    .internal
                    .iter()
                    .flatten()
                    .all(|c| c.busy.is_none() && c.input.is_empty());
            if idle {
                break;
            }
            now += 1;
            debug_assert!(now < 1_000_000, "array livelock");
        }
        let _ = committed;

        let r = FxMat4::from_fn(|k, j| {
            if j == k {
                CFx::new(self.boundary[k].r, Q16::ZERO)
            } else if j > k {
                self.internal[k][j - k - 1].z
            } else {
                CFx::ZERO
            }
        });
        let q_h = FxMat4::from_fn(|k, j| self.internal[k][N_ANTENNAS + j - k - 1].z);
        (QrDecomposition { r, q_h }, last_commit)
    }

    /// Routes a value to the consuming cell of array row `k`,
    /// column `j`.
    fn deliver(&mut self, k: usize, j: usize, value: CQ16) {
        if j == k {
            self.boundary[k].input.push_back(value);
        } else if j > k {
            self.internal[k][j - k - 1].input.push_back(value);
        }
        // j < k cannot happen: columns are absorbed in order.
    }

    /// Resets all cell state (the paper's init signal, which "resets
    /// all the feedback elements" between subcarriers).
    pub fn reset(&mut self) {
        for b in &mut self.boundary {
            b.r = Q16::ZERO;
            b.input.clear();
            b.busy = None;
        }
        for cell in self.internal.iter_mut().flatten() {
            cell.z = CFx::ZERO;
            cell.input.clear();
            cell.angles.clear();
            cell.busy = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Mat4;
    use crate::systolic::CordicQrd;
    use mimo_fixed::Cf64;

    fn rand_matrix(seed: u64) -> Mat4 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        Mat4::from_fn(|_, _| Cf64::new(next(), next()))
    }

    #[test]
    fn clocked_array_is_bit_identical_to_functional_model() {
        let functional = CordicQrd::new();
        let mut array = SystolicQrdArray::new();
        for seed in 1..20 {
            let h = rand_matrix(seed).to_fixed();
            let (clocked, _) = array.run(&h);
            let reference = functional.decompose(&h);
            assert_eq!(clocked, reference, "seed {seed}");
        }
    }

    #[test]
    fn clocked_latency_is_the_papers_440() {
        let mut array = SystolicQrdArray::new();
        for seed in [3u64, 17, 99] {
            let h = rand_matrix(seed).to_fixed();
            let (_, cycles) = array.run(&h);
            assert_eq!(cycles, 440, "seed {seed}");
        }
    }

    #[test]
    fn latency_scales_with_cordic_depth() {
        // Shallower CORDICs -> proportionally shorter datapath.
        let mut array = SystolicQrdArray::with_cordic(Cordic::with_iterations(8));
        let h = rand_matrix(5).to_fixed();
        let (_, cycles) = array.run(&h);
        // 22 stages × 10-cycle elements.
        assert_eq!(cycles, 220);
    }

    #[test]
    fn init_between_matrices_gives_independent_results() {
        let mut array = SystolicQrdArray::new();
        let h1 = rand_matrix(7).to_fixed();
        let h2 = rand_matrix(8).to_fixed();
        let (first, _) = array.run(&h1);
        let (_, _) = array.run(&h2);
        let (again, _) = array.run(&h1);
        assert_eq!(first, again, "state must not leak across init");
    }

    #[test]
    fn identity_matrix_through_clocked_array() {
        let mut array = SystolicQrdArray::new();
        let (result, cycles) = array.run(&FxMat4::identity());
        assert_eq!(cycles, 440);
        let err_r = result.r.to_f64().max_distance(&Mat4::identity());
        assert!(err_r < 5e-3, "R err {err_r}");
    }
}
