//! Property-based tests for the QRD pipeline invariants.

use mimo_chanest::{invert_upper_triangular, qr_givens_f64, CordicQrd, Mat4};
use mimo_fixed::Cf64;
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Mat4> {
    proptest::collection::vec((-0.6f64..0.6, -0.6f64..0.6), 16).prop_map(|v| {
        Mat4::from_fn(|r, c| {
            let (re, im) = v[r * 4 + c];
            Cf64::new(re, im)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Float reference: Q·R reconstructs H, Q unitary, R triangular.
    #[test]
    fn float_qr_invariants(h in arb_matrix()) {
        let (q, r) = qr_givens_f64(&h);
        prop_assert!((q * r).max_distance(&h) < 1e-10);
        prop_assert!((q.hermitian() * q).max_distance(&Mat4::identity()) < 1e-10);
        for row in 0..4 {
            for col in 0..row {
                prop_assert!(r[(row, col)].norm() < 1e-10);
            }
            prop_assert!(r[(row, row)].im.abs() < 1e-10);
            prop_assert!(r[(row, row)].re >= -1e-10);
        }
    }

    /// Fixed-point systolic array: Qᴴ·H ≈ R and R matches the float
    /// reference (R is unique given a real non-negative diagonal).
    #[test]
    fn fixed_qrd_invariants(h in arb_matrix()) {
        let qrd = CordicQrd::new();
        let hf = h.to_fixed();
        let d = qrd.decompose(&hf);
        let qh_h = d.q_h.mul_mat(&hf).to_f64();
        prop_assert!(qh_h.max_distance(&d.r.to_f64()) < 0.01);
        let (_, r_ref) = qr_givens_f64(&h);
        prop_assert!(d.r.to_f64().max_distance(&r_ref) < 0.01);
    }

    /// Whenever the R-inverse block accepts a matrix, the inversion is
    /// numerically sound: R·R⁻¹ ≈ I and H·H⁻¹ ≈ I.
    #[test]
    fn accepted_inversions_are_sound(h in arb_matrix()) {
        let qrd = CordicQrd::new();
        let hf = h.to_fixed();
        let d = qrd.decompose(&hf);
        if let Ok(r_inv) = invert_upper_triangular(&d.r) {
            let rr = d.r.mul_mat(&r_inv).to_f64();
            prop_assert!(rr.max_distance(&Mat4::identity()) < 0.05,
                "R R^-1 error {}", rr.max_distance(&Mat4::identity()));
            let h_inv = r_inv.mul_mat(&d.q_h);
            let hh = h_inv.mul_mat(&hf).to_f64();
            // ZF error grows with conditioning; bound loosely but
            // meaningfully (divider floor is 1/512).
            prop_assert!(hh.max_distance(&Mat4::identity()) < 0.6,
                "H^-1 H error {}", hh.max_distance(&Mat4::identity()));
        }
    }

    /// The decomposition is deterministic (pure function of H).
    #[test]
    fn decompose_is_deterministic(h in arb_matrix()) {
        let qrd = CordicQrd::new();
        let hf = h.to_fixed();
        prop_assert_eq!(qrd.decompose(&hf), qrd.decompose(&hf));
    }

    /// Scaling H by a power of two scales R accordingly (the array has
    /// no hidden normalization).
    #[test]
    fn qrd_is_scale_equivariant(h in arb_matrix()) {
        let qrd = CordicQrd::new();
        let half = Mat4::from_fn(|r, c| h[(r, c)].scale(0.5));
        let d1 = qrd.decompose(&h.to_fixed());
        let d2 = qrd.decompose(&half.to_fixed());
        let scaled_r = Mat4::from_fn(|r, c| d1.r.to_f64()[(r, c)].scale(0.5));
        prop_assert!(d2.r.to_f64().max_distance(&scaled_r) < 0.01);
    }
}
