//! Property-based tests across the coding pipeline.

use mimo_coding::{
    bits, depuncture, hard_to_llr, puncture, CodeRate, CodeSpec, ConvolutionalEncoder, Llr,
    ViterbiDecoder,
};
use proptest::prelude::*;

fn bitvec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, 1..max_len)
}

proptest! {
    /// encode → decode is the identity for any input, any rate.
    #[test]
    fn coded_roundtrip_noiseless(info in bitvec(256), rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        // Puncturing needs the mother length to be a multiple of the
        // period for clean depuncture; terminated blocks always are
        // when info length is padded by the caller — emulate that here.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);

        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let decoded = dec.decode_terminated(&restored).unwrap();
        prop_assert_eq!(decoded, info);
    }

    /// A single flipped coded bit never breaks decoding (d_free >> 3).
    #[test]
    fn single_error_always_corrected(info in bitvec(128), err_pos in any::<prop::sample::Index>()) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mut coded = enc.encode_terminated(&info);
        let pos = err_pos.index(coded.len());
        coded[pos] ^= 1;
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        prop_assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    /// Bit/byte packing roundtrips for whole bytes.
    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bits::bytes_to_bits(&data);
        prop_assert_eq!(bits.len(), data.len() * 8);
        prop_assert_eq!(bits::bits_to_bytes(&bits), data);
    }

    /// Puncture output length matches the configured rate exactly when
    /// the mother length is a multiple of the pattern period.
    #[test]
    fn puncture_length_formula(blocks in 1usize..50, rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        let period = rate.keep_pattern().len();
        let mother = vec![0u8; blocks * period];
        let kept = puncture(&mother, rate);
        let keeps_per_period = rate.keep_pattern().iter().filter(|&&k| k).count();
        prop_assert_eq!(kept.len(), blocks * keeps_per_period);
        // kept/mother must equal (1/2)/(rate) = denominator/(2·numerator).
        prop_assert_eq!(
            kept.len() * 2 * rate.numerator(),
            mother.len() * rate.denominator()
        );
    }

    /// The scrambler never changes data length and double-scrambling
    /// with the same seed restores the input.
    #[test]
    fn scrambler_involution(data in bitvec(512), seed in 1u8..128) {
        let mut a = mimo_coding::Scrambler::new(seed);
        let mut b = mimo_coding::Scrambler::new(seed);
        let s = a.scramble(&data);
        prop_assert_eq!(s.len(), data.len());
        prop_assert_eq!(b.scramble(&s), data);
    }
}
