//! Property-based tests across the coding pipeline, including the
//! differential suites pinning the butterfly, SIMD and bitsliced-batch
//! ACS kernels bit-identical to the scalar reference kernel.

use mimo_coding::{
    bits, depuncture, hard_to_llr, puncture, BatchKernel, BatchViterbiWorkspace, CodeRate,
    CodeSpec, ConvolutionalEncoder, Llr, ViterbiDecoder, ViterbiKernel, ViterbiWorkspace,
};
use proptest::prelude::*;

fn bitvec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, 1..max_len)
}

/// Deterministic xorshift noise source for LLR perturbation.
struct Noise(u64);

impl Noise {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A value in `[-scale, scale]`.
    fn llr(&mut self, scale: i64) -> Llr {
        ((self.next() % (2 * scale as u64 + 1)) as i64 - scale) as Llr
    }
}

/// Adds seeded noise to every LLR. Small scales produce many exact
/// metric ties, the hardest case for kernel equivalence.
fn perturb(soft: &mut [Llr], seed: u64, scale: i64) {
    let mut noise = Noise(seed | 1);
    for llr in soft {
        *llr += noise.llr(scale);
    }
}

proptest! {
    /// encode → decode is the identity for any input, any rate.
    #[test]
    fn coded_roundtrip_noiseless(info in bitvec(256), rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        // Puncturing needs the mother length to be a multiple of the
        // period for clean depuncture; terminated blocks always are
        // when info length is padded by the caller — emulate that here.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);

        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let decoded = dec.decode_terminated(&restored).unwrap();
        prop_assert_eq!(decoded, info);
    }

    /// A single flipped coded bit never breaks decoding (d_free >> 3).
    #[test]
    fn single_error_always_corrected(info in bitvec(128), err_pos in any::<prop::sample::Index>()) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mut coded = enc.encode_terminated(&info);
        let pos = err_pos.index(coded.len());
        coded[pos] ^= 1;
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        prop_assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    /// Bit/byte packing roundtrips for whole bytes.
    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bits::bytes_to_bits(&data);
        prop_assert_eq!(bits.len(), data.len() * 8);
        prop_assert_eq!(bits::bits_to_bytes(&bits), data);
    }

    /// Puncture output length matches the configured rate exactly when
    /// the mother length is a multiple of the pattern period.
    #[test]
    fn puncture_length_formula(blocks in 1usize..50, rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        let period = rate.keep_pattern().len();
        let mother = vec![0u8; blocks * period];
        let kept = puncture(&mother, rate);
        let keeps_per_period = rate.keep_pattern().iter().filter(|&&k| k).count();
        prop_assert_eq!(kept.len(), blocks * keeps_per_period);
        // kept/mother must equal (1/2)/(rate) = denominator/(2·numerator).
        prop_assert_eq!(
            kept.len() * 2 * rate.numerator(),
            mother.len() * rate.denominator()
        );
    }

    /// The scrambler never changes data length and double-scrambling
    /// with the same seed restores the input.
    #[test]
    fn scrambler_involution(data in bitvec(512), seed in 1u8..128) {
        let mut a = mimo_coding::Scrambler::new(seed);
        let mut b = mimo_coding::Scrambler::new(seed);
        let s = a.scramble(&data);
        prop_assert_eq!(s.len(), data.len());
        prop_assert_eq!(b.scramble(&s), data);
    }

    /// Butterfly and scalar kernels decode punctured/terminated blocks
    /// identically across all rates, hard and noisy-soft metrics.
    #[test]
    fn butterfly_matches_scalar_terminated(
        info in bitvec(256),
        rate_idx in 0usize..3,
        seed in any::<u64>(),
        soft_metrics in any::<bool>(),
    ) {
        let rate = CodeRate::ALL[rate_idx];
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let mut soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        if soft_metrics {
            // Heavy noise: up to ±1.5 HARD_LLR, so sign flips and
            // near-erasures are routine.
            perturb(&mut soft, seed, 96);
        }
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let mut ws = ViterbiWorkspace::new();
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        dec.decode_terminated_into(&restored, &mut ws, &mut fast).unwrap();
        dec.decode_terminated_scalar_into(&restored, &mut ws, &mut reference).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Kernel equivalence on pure random LLRs (no codeword structure):
    /// tiny scales force constant metric ties, exercising the
    /// tie-break and traceback corners hardest.
    #[test]
    fn butterfly_matches_scalar_on_random_llrs(
        n_branches in 1usize..400,
        seed in any::<u64>(),
        scale_idx in 0usize..4,
    ) {
        let scale = [1i64, 4, 64, 100_000][scale_idx];
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        let mut noise = Noise(seed | 1);
        let soft: Vec<Llr> = (0..2 * n_branches).map(|_| noise.llr(scale)).collect();
        let fast = dec.decode_stream(&soft).unwrap();
        let reference = dec.decode_stream_scalar(&soft).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Windowed decoding: the butterfly survivor-mask ring commits the
    /// same bits as the scalar ring for any window depth.
    #[test]
    fn windowed_butterfly_matches_scalar(
        info in bitvec(300),
        window in 1usize..80,
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        perturb(&mut soft, seed, 80);
        let fast = dec.decode_windowed(&soft, window).unwrap();
        let reference = dec.decode_windowed_scalar(&soft, window).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Kernel equivalence holds for arbitrary valid codes, not just
    /// the built-in K=7 pair (random constraint length and
    /// generators). K runs to the supported maximum of 9 so the
    /// multi-word survivor-mask path (128/256 states, 2–4 `u64` words
    /// per step) is exercised, not just the single-word K ≤ 7 case.
    #[test]
    fn butterfly_matches_scalar_for_random_codes(
        k in 3usize..10,
        g_seed in any::<u64>(),
        n_branches in 8usize..120,
        llr_seed in any::<u64>(),
    ) {
        let mut noise = Noise(g_seed | 1);
        let mask = (1u64 << k) - 1;
        let g0 = ((noise.next() & mask) as u32).max(1);
        let g1 = ((noise.next() & mask) as u32).max(1);
        let spec = CodeSpec::new(k, vec![g0, g1], 1).unwrap();
        let dec = ViterbiDecoder::new(spec);
        let mut noise = Noise(llr_seed | 1);
        let soft: Vec<Llr> = (0..2 * n_branches).map(|_| noise.llr(50)).collect();
        let fast = dec.decode_stream(&soft).unwrap();
        let reference = dec.decode_stream_scalar(&soft).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Explicit-kernel dispatch: the SIMD tier, the butterfly tier and
    /// the scalar reference decode terminated blocks identically across
    /// all rates. Tiny noise scales force constant metric ties, the
    /// hardest case for lane-for-lane equivalence.
    #[test]
    fn simd_matches_butterfly_and_scalar_terminated(
        info in bitvec(256),
        rate_idx in 0usize..3,
        seed in any::<u64>(),
        scale_idx in 0usize..3,
    ) {
        let rate = CodeRate::ALL[rate_idx];
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let mut soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        perturb(&mut soft, seed, [1i64, 4, 96][scale_idx]);
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let mut ws = ViterbiWorkspace::new();
        let mut simd = Vec::new();
        let mut butterfly = Vec::new();
        let mut scalar = Vec::new();
        dec.decode_terminated_with(ViterbiKernel::Simd, &restored, &mut ws, &mut simd).unwrap();
        dec.decode_terminated_with(ViterbiKernel::Butterfly, &restored, &mut ws, &mut butterfly)
            .unwrap();
        dec.decode_terminated_with(ViterbiKernel::Scalar, &restored, &mut ws, &mut scalar)
            .unwrap();
        prop_assert_eq!(&simd, &butterfly);
        prop_assert_eq!(&simd, &scalar);
    }

    /// SIMD equivalence holds for random simd-eligible codes (K ≥ 5 so
    /// the state count fills the lanes), on pure random LLRs.
    #[test]
    fn simd_matches_scalar_for_random_codes(
        k in 5usize..10,
        g_seed in any::<u64>(),
        n_branches in 10usize..120,
        llr_seed in any::<u64>(),
    ) {
        let mut noise = Noise(g_seed | 1);
        let mask = (1u64 << k) - 1;
        let g0 = ((noise.next() & mask) as u32).max(1);
        let g1 = ((noise.next() & mask) as u32).max(1);
        let spec = CodeSpec::new(k, vec![g0, g1], 1).unwrap();
        let dec = ViterbiDecoder::new(spec);
        let mut noise = Noise(llr_seed | 1);
        let soft: Vec<Llr> = (0..2 * n_branches).map(|_| noise.llr(50)).collect();
        let mut ws = ViterbiWorkspace::new();
        let mut simd = Vec::new();
        let mut scalar = Vec::new();
        dec.decode_terminated_with(ViterbiKernel::Simd, &soft, &mut ws, &mut simd).unwrap();
        dec.decode_terminated_with(ViterbiKernel::Scalar, &soft, &mut ws, &mut scalar).unwrap();
        prop_assert_eq!(simd, scalar);
    }

    /// Windowed decoding commits the same bits on all three kernel
    /// tiers for any window depth.
    #[test]
    fn windowed_simd_matches_butterfly_and_scalar(
        info in bitvec(300),
        window in 1usize..80,
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        perturb(&mut soft, seed, 80);
        let simd = dec.decode_windowed_with(ViterbiKernel::Simd, &soft, window).unwrap();
        let butterfly = dec.decode_windowed_with(ViterbiKernel::Butterfly, &soft, window).unwrap();
        let scalar = dec.decode_windowed_scalar(&soft, window).unwrap();
        prop_assert_eq!(&simd, &butterfly);
        prop_assert_eq!(&simd, &scalar);
    }

    /// The batch entry point equals the per-block loop for every batch
    /// width 1..=64, both under `Auto` dispatch and with the bitsliced
    /// kernel explicitly requested — each lane bit-identical to
    /// decoding its block alone, whatever the occupancy cost model
    /// picks.
    #[test]
    fn batch_matches_per_block_loop(
        width in 1usize..65,
        info_len in 16usize..64,
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mut noise = Noise(seed | 1);
        let mut stored: Vec<Vec<Llr>> = Vec::new();
        for b in 0..width {
            let info: Vec<u8> = (0..info_len).map(|i| u8::from((i * 31 + b * 7) % 5 < 2)).collect();
            let mut soft: Vec<Llr> =
                enc.encode_terminated(&info).iter().map(|&b| hard_to_llr(b)).collect();
            for llr in soft.iter_mut() {
                *llr += noise.llr(90);
            }
            stored.push(soft);
        }
        let blocks: Vec<&[Llr]> = stored.iter().map(|b| b.as_slice()).collect();
        let mut batch_ws = BatchViterbiWorkspace::new();
        let mut ws = ViterbiWorkspace::new();
        let mut one = Vec::new();
        for kernel in [BatchKernel::Bitsliced, BatchKernel::Auto] {
            dec.decode_terminated_batch_with(kernel, &blocks, &mut batch_ws).unwrap();
            for (block, got) in blocks.iter().zip(batch_ws.outputs()) {
                dec.decode_terminated_into(block, &mut ws, &mut one).unwrap();
                prop_assert_eq!(&one, got, "kernel {:?}", kernel);
            }
        }
    }

    /// Ragged batches (mixed block lengths, so the bitsliced kernel
    /// must decline) still equal the per-block loop through the
    /// fallback path.
    #[test]
    fn ragged_batch_matches_per_block_loop(
        widths in proptest::collection::vec(8usize..48, 2..20),
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mut noise = Noise(seed | 1);
        let mut stored: Vec<Vec<Llr>> = Vec::new();
        for (b, &info_len) in widths.iter().enumerate() {
            let info: Vec<u8> = (0..info_len).map(|i| u8::from((i * 13 + b) % 3 == 0)).collect();
            let mut soft: Vec<Llr> =
                enc.encode_terminated(&info).iter().map(|&b| hard_to_llr(b)).collect();
            for llr in soft.iter_mut() {
                *llr += noise.llr(70);
            }
            stored.push(soft);
        }
        let blocks: Vec<&[Llr]> = stored.iter().map(|b| b.as_slice()).collect();
        let batch = dec.decode_batch(&blocks).unwrap();
        let mut ws = ViterbiWorkspace::new();
        let mut one = Vec::new();
        for (block, got) in blocks.iter().zip(&batch) {
            dec.decode_terminated_into(block, &mut ws, &mut one).unwrap();
            prop_assert_eq!(&one, got);
        }
    }
}

#[test]
fn batch_wider_than_64_spans_groups() {
    // 70 equal blocks: one full 64-lane group plus a 6-lane tail.
    let spec = CodeSpec::ieee80211a();
    let mut enc = ConvolutionalEncoder::new(spec.clone());
    let dec = ViterbiDecoder::new(spec);
    let mut noise = Noise(0x5eed_cafe);
    let mut stored: Vec<Vec<Llr>> = Vec::new();
    for b in 0..70 {
        let info: Vec<u8> = (0..48).map(|i| u8::from((i * 29 + b * 3) % 7 < 3)).collect();
        let mut soft: Vec<Llr> = enc
            .encode_terminated(&info)
            .iter()
            .map(|&b| hard_to_llr(b))
            .collect();
        for llr in soft.iter_mut() {
            *llr += noise.llr(60);
        }
        stored.push(soft);
    }
    let blocks: Vec<&[Llr]> = stored.iter().map(|b| b.as_slice()).collect();
    let batch = dec.decode_batch(&blocks).unwrap();
    assert_eq!(batch.len(), 70);
    let mut ws = ViterbiWorkspace::new();
    let mut one = Vec::new();
    for (block, got) in blocks.iter().zip(&batch) {
        dec.decode_terminated_into(block, &mut ws, &mut one).unwrap();
        assert_eq!(&one, got);
    }
}

#[test]
fn batch_surfaces_bad_block_errors() {
    let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
    // Ragged odd-length member forces the fallback loop, which must
    // report the same error as the per-block entry point.
    let good = vec![10 as Llr; 40];
    let bad = vec![10 as Llr; 7];
    let blocks: Vec<&[Llr]> = vec![&good, &bad];
    assert!(dec.decode_batch(&blocks).is_err());
    // An empty batch is a no-op.
    assert!(dec.decode_batch(&[]).unwrap().is_empty());
}

#[test]
fn kernel_name_reflects_dispatch() {
    let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
    let soft = vec![10 as Llr; 48];
    let name = dec.kernel_name(&soft);
    if cfg!(feature = "scalar-kernel") {
        assert_eq!(name, "scalar");
    } else if cfg!(feature = "simd") {
        assert!(name.starts_with("simd-"), "got {name}");
    } else {
        assert_eq!(name, "butterfly");
    }
    // LLRs beyond the i32 exactness bound always fall back to scalar.
    assert_eq!(dec.kernel_name(&[1 << 28, 0]), "scalar");
    // K=3 has too few states for the 8-lane tier: butterfly at best.
    let k3 = ViterbiDecoder::new(CodeSpec::new(3, vec![0o5, 0o7], 1).unwrap());
    if !cfg!(feature = "scalar-kernel") {
        assert_eq!(k3.kernel_name(&soft), "butterfly");
    }
}

#[test]
fn profiled_decode_matches_plain_and_names_its_kernel() {
    let spec = CodeSpec::ieee80211a();
    let mut enc = ConvolutionalEncoder::new(spec.clone());
    let dec = ViterbiDecoder::new(spec);
    let info: Vec<u8> = (0..300).map(|i| u8::from((i * 37 + 11) % 9 < 4)).collect();
    let mut soft: Vec<Llr> = enc
        .encode_terminated(&info)
        .iter()
        .map(|&b| hard_to_llr(b))
        .collect();
    perturb(&mut soft, 0x9e3779b9, 80);
    let mut ws = ViterbiWorkspace::new();
    let mut plain = Vec::new();
    let mut profiled = Vec::new();
    dec.decode_terminated_into(&soft, &mut ws, &mut plain).unwrap();
    let profile = dec
        .decode_terminated_profiled(&soft, &mut ws, &mut profiled)
        .unwrap();
    assert_eq!(plain, profiled);
    assert_eq!(profile.kernel, dec.kernel_name(&soft));
}
