//! Property-based tests across the coding pipeline, including the
//! differential suite pinning the butterfly ACS kernel bit-identical
//! to the scalar reference kernel.

use mimo_coding::{
    bits, depuncture, hard_to_llr, puncture, CodeRate, CodeSpec, ConvolutionalEncoder, Llr,
    ViterbiDecoder, ViterbiWorkspace,
};
use proptest::prelude::*;

fn bitvec(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..2, 1..max_len)
}

/// Deterministic xorshift noise source for LLR perturbation.
struct Noise(u64);

impl Noise {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// A value in `[-scale, scale]`.
    fn llr(&mut self, scale: i64) -> Llr {
        ((self.next() % (2 * scale as u64 + 1)) as i64 - scale) as Llr
    }
}

/// Adds seeded noise to every LLR. Small scales produce many exact
/// metric ties, the hardest case for kernel equivalence.
fn perturb(soft: &mut [Llr], seed: u64, scale: i64) {
    let mut noise = Noise(seed | 1);
    for llr in soft {
        *llr += noise.llr(scale);
    }
}

proptest! {
    /// encode → decode is the identity for any input, any rate.
    #[test]
    fn coded_roundtrip_noiseless(info in bitvec(256), rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        // Puncturing needs the mother length to be a multiple of the
        // period for clean depuncture; terminated blocks always are
        // when info length is padded by the caller — emulate that here.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);

        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let decoded = dec.decode_terminated(&restored).unwrap();
        prop_assert_eq!(decoded, info);
    }

    /// A single flipped coded bit never breaks decoding (d_free >> 3).
    #[test]
    fn single_error_always_corrected(info in bitvec(128), err_pos in any::<prop::sample::Index>()) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mut coded = enc.encode_terminated(&info);
        let pos = err_pos.index(coded.len());
        coded[pos] ^= 1;
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        prop_assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    /// Bit/byte packing roundtrips for whole bytes.
    #[test]
    fn bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let bits = bits::bytes_to_bits(&data);
        prop_assert_eq!(bits.len(), data.len() * 8);
        prop_assert_eq!(bits::bits_to_bytes(&bits), data);
    }

    /// Puncture output length matches the configured rate exactly when
    /// the mother length is a multiple of the pattern period.
    #[test]
    fn puncture_length_formula(blocks in 1usize..50, rate_idx in 0usize..3) {
        let rate = CodeRate::ALL[rate_idx];
        let period = rate.keep_pattern().len();
        let mother = vec![0u8; blocks * period];
        let kept = puncture(&mother, rate);
        let keeps_per_period = rate.keep_pattern().iter().filter(|&&k| k).count();
        prop_assert_eq!(kept.len(), blocks * keeps_per_period);
        // kept/mother must equal (1/2)/(rate) = denominator/(2·numerator).
        prop_assert_eq!(
            kept.len() * 2 * rate.numerator(),
            mother.len() * rate.denominator()
        );
    }

    /// The scrambler never changes data length and double-scrambling
    /// with the same seed restores the input.
    #[test]
    fn scrambler_involution(data in bitvec(512), seed in 1u8..128) {
        let mut a = mimo_coding::Scrambler::new(seed);
        let mut b = mimo_coding::Scrambler::new(seed);
        let s = a.scramble(&data);
        prop_assert_eq!(s.len(), data.len());
        prop_assert_eq!(b.scramble(&s), data);
    }

    /// Butterfly and scalar kernels decode punctured/terminated blocks
    /// identically across all rates, hard and noisy-soft metrics.
    #[test]
    fn butterfly_matches_scalar_terminated(
        info in bitvec(256),
        rate_idx in 0usize..3,
        seed in any::<u64>(),
        soft_metrics in any::<bool>(),
    ) {
        let rate = CodeRate::ALL[rate_idx];
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let mother = enc.encode_terminated(&info);
        let tx = puncture(&mother, rate);
        let mut soft: Vec<Llr> = tx.iter().map(|&b| hard_to_llr(b)).collect();
        if soft_metrics {
            // Heavy noise: up to ±1.5 HARD_LLR, so sign flips and
            // near-erasures are routine.
            perturb(&mut soft, seed, 96);
        }
        let restored = depuncture(&soft, rate, mother.len()).unwrap();
        let mut ws = ViterbiWorkspace::new();
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        dec.decode_terminated_into(&restored, &mut ws, &mut fast).unwrap();
        dec.decode_terminated_scalar_into(&restored, &mut ws, &mut reference).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Kernel equivalence on pure random LLRs (no codeword structure):
    /// tiny scales force constant metric ties, exercising the
    /// tie-break and traceback corners hardest.
    #[test]
    fn butterfly_matches_scalar_on_random_llrs(
        n_branches in 1usize..400,
        seed in any::<u64>(),
        scale_idx in 0usize..4,
    ) {
        let scale = [1i64, 4, 64, 100_000][scale_idx];
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        let mut noise = Noise(seed | 1);
        let soft: Vec<Llr> = (0..2 * n_branches).map(|_| noise.llr(scale)).collect();
        let fast = dec.decode_stream(&soft).unwrap();
        let reference = dec.decode_stream_scalar(&soft).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Windowed decoding: the butterfly survivor-mask ring commits the
    /// same bits as the scalar ring for any window depth.
    #[test]
    fn windowed_butterfly_matches_scalar(
        info in bitvec(300),
        window in 1usize..80,
        seed in any::<u64>(),
    ) {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        perturb(&mut soft, seed, 80);
        let fast = dec.decode_windowed(&soft, window).unwrap();
        let reference = dec.decode_windowed_scalar(&soft, window).unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Kernel equivalence holds for arbitrary valid codes, not just
    /// the built-in K=7 pair (random constraint length and
    /// generators). K runs to the supported maximum of 9 so the
    /// multi-word survivor-mask path (128/256 states, 2–4 `u64` words
    /// per step) is exercised, not just the single-word K ≤ 7 case.
    #[test]
    fn butterfly_matches_scalar_for_random_codes(
        k in 3usize..10,
        g_seed in any::<u64>(),
        n_branches in 8usize..120,
        llr_seed in any::<u64>(),
    ) {
        let mut noise = Noise(g_seed | 1);
        let mask = (1u64 << k) - 1;
        let g0 = ((noise.next() & mask) as u32).max(1);
        let g1 = ((noise.next() & mask) as u32).max(1);
        let spec = CodeSpec::new(k, vec![g0, g1], 1).unwrap();
        let dec = ViterbiDecoder::new(spec);
        let mut noise = Noise(llr_seed | 1);
        let soft: Vec<Llr> = (0..2 * n_branches).map(|_| noise.llr(50)).collect();
        let fast = dec.decode_stream(&soft).unwrap();
        let reference = dec.decode_stream_scalar(&soft).unwrap();
        prop_assert_eq!(fast, reference);
    }
}
