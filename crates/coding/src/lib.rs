//! Forward error correction: convolutional encoder, puncturing,
//! Viterbi decoder, and the 802.11a scrambler.
//!
//! The paper's transmitter streams uncoded data into a "generic
//! convolutional encoder" whose data-path width, rate `R` and puncture
//! pattern are set before synthesis (§IV.A); the receiver closes the
//! loop with a Viterbi decoder (§IV.B). The pilot tones are
//! "de-scrambled" at the receiver, which requires the 802.11a
//! 127-periodic polarity sequence.
//!
//! * [`ConvolutionalEncoder`] — K=7 industry code by default
//!   ([`CodeSpec::ieee80211a`]), arbitrary generators supported.
//! * [`CodeRate`] + [`puncture`]/[`depuncture`] — the 802.11a r=2/3 and
//!   r=3/4 puncturing patterns (erasures re-inserted as zero-LLRs).
//! * [`ViterbiDecoder`] — soft-decision add-compare-select with full
//!   block traceback; hard decision is the degenerate ±1 case.
//! * [`Scrambler`] — the x⁷+x⁴+1 LFSR, plus
//!   [`pilot_polarity`] for the pilot sequence.
//! * [`bits`] — bit/byte packing helpers shared by the whole stack.
//!
//! # The butterfly ACS kernel
//!
//! The decode hot path is the Viterbi add-compare-select recursion —
//! ~70 % of burst decode time in the software model, and the block the
//! paper spends an entire pipelined ACS array on in hardware. The
//! default backend (module `butterfly`, private) restructures the
//! recursion the same way the silicon does:
//!
//! * one **branch-metric table** per trellis step (`2^n` correlations,
//!   not `states × 2 × n`),
//! * a **radix-2 butterfly** walk over state pairs `2j`/`2j+1` → `j`,
//!   `j+S/2`, each butterfly sharing its two loaded path metrics
//!   between both compare-selects — the software image of the paper's
//!   ACS array,
//! * **`i32` ping-pong metric rows** renormalized by a uniform shift
//!   every 64 branches (the fixed-width rescale of a hardware ACS),
//! * **one survivor bit per state per branch**, packed into `u64`
//!   words (64-state K=7 ⇒ one word per branch — the survivor RAM), so
//!   traceback is a shift-and-mask walk instead of a pointer chase.
//!
//! The scalar reference kernel is retained: the `decode_*_scalar*`
//! methods always run it (differential testing), it serves as the
//! automatic fallback for codes with more than 8 generators or LLRs
//! beyond the `i32` exactness bound, and the `scalar-kernel` cargo
//! feature forces it as the backend everywhere. Both kernels are
//! bit-identical on every input the butterfly accepts — enforced by
//! the property suite in `tests/proptests.rs`.

pub mod bits;
mod butterfly;
mod conv;
mod puncture;
mod scrambler;
mod viterbi;

pub use conv::{CodeSpec, CodingError, ConvolutionalEncoder};
pub use puncture::{depuncture, depuncture_into, puncture, puncture_into, CodeRate};
pub use scrambler::{pilot_polarity, Scrambler};
pub use viterbi::{ViterbiDecoder, ViterbiWorkspace};

/// A soft bit (log-likelihood ratio). Positive means "more likely 0",
/// negative "more likely 1", zero is an erasure. Hard bits map to
/// ±[`HARD_LLR`].
pub type Llr = i32;

/// Magnitude used when converting a hard bit to a soft value.
pub const HARD_LLR: Llr = 64;

/// Converts a hard bit (0/1) to its soft representation.
#[inline]
pub fn hard_to_llr(bit: u8) -> Llr {
    if bit == 0 {
        HARD_LLR
    } else {
        -HARD_LLR
    }
}

/// Converts a soft value to a hard bit decision (erasure decides 0).
#[inline]
pub fn llr_to_hard(llr: Llr) -> u8 {
    u8::from(llr < 0)
}
