//! Forward error correction: convolutional encoder, puncturing,
//! Viterbi decoder, and the 802.11a scrambler.
//!
//! The paper's transmitter streams uncoded data into a "generic
//! convolutional encoder" whose data-path width, rate `R` and puncture
//! pattern are set before synthesis (§IV.A); the receiver closes the
//! loop with a Viterbi decoder (§IV.B). The pilot tones are
//! "de-scrambled" at the receiver, which requires the 802.11a
//! 127-periodic polarity sequence.
//!
//! * [`ConvolutionalEncoder`] — K=7 industry code by default
//!   ([`CodeSpec::ieee80211a`]), arbitrary generators supported.
//! * [`CodeRate`] + [`puncture`]/[`depuncture`] — the 802.11a r=2/3 and
//!   r=3/4 puncturing patterns (erasures re-inserted as zero-LLRs).
//! * [`ViterbiDecoder`] — soft-decision add-compare-select with full
//!   block traceback; hard decision is the degenerate ±1 case.
//! * [`Scrambler`] — the x⁷+x⁴+1 LFSR, plus
//!   [`pilot_polarity`] for the pilot sequence.
//! * [`bits`] — bit/byte packing helpers shared by the whole stack.
//!
//! # The butterfly ACS kernel
//!
//! The decode hot path is the Viterbi add-compare-select recursion —
//! ~70 % of burst decode time in the software model, and the block the
//! paper spends an entire pipelined ACS array on in hardware. The
//! default backend (module `butterfly`, private) restructures the
//! recursion the same way the silicon does:
//!
//! * one **branch-metric table** per trellis step (`2^n` correlations,
//!   not `states × 2 × n`),
//! * a **radix-2 butterfly** walk over state pairs `2j`/`2j+1` → `j`,
//!   `j+S/2`, each butterfly sharing its two loaded path metrics
//!   between both compare-selects — the software image of the paper's
//!   ACS array,
//! * **`i32` ping-pong metric rows** renormalized by a uniform shift
//!   every 64 branches (the fixed-width rescale of a hardware ACS),
//! * **one survivor bit per state per branch**, packed into `u64`
//!   words (64-state K=7 ⇒ one word per branch — the survivor RAM), so
//!   traceback is a shift-and-mask walk instead of a pointer chase.
//!
//! The scalar reference kernel is retained: the `decode_*_scalar*`
//! methods always run it (differential testing), it serves as the
//! automatic fallback for codes with more than 8 generators or LLRs
//! beyond the `i32` exactness bound, and the `scalar-kernel` cargo
//! feature forces it as the backend everywhere. Both kernels are
//! bit-identical on every input the butterfly accepts — enforced by
//! the property suite in `tests/proptests.rs`.
//!
//! # The SIMD lane tier
//!
//! With the `simd` cargo feature (module `simd`, private), the
//! butterfly walk runs eight butterflies per step in one `i32` register
//! row: two contiguous loads pick up sixteen predecessor metrics, an
//! in-register even/odd de-interleave forms the `2j`/`2j+1` vectors,
//! the (≤ 8-entry) branch-metric table is gathered by an in-register
//! permute over prebuilt label vectors, and the decision bits fall out
//! of a sign-bit movemask straight into the survivor words. AVX2
//! intrinsics are used when `is_x86_feature_detected!` reports support
//! at run time; elsewhere a portable fixed-width-array tier (written
//! for the autovectorizer) fills the same seam. Codes that do not fit
//! the lanes — more than 3 output bits per input or fewer than 16
//! states — stay on the scalar butterfly tier automatically.
//! [`ViterbiKernel`] documents the full selection matrix, and
//! `ViterbiDecoder::kernel_name` reports what `Auto` would dispatch.
//!
//! # The bitsliced batch kernel
//!
//! [`ViterbiDecoder::decode_terminated_batch`] decodes up to 64
//! independent same-code blocks simultaneously (module `bitslice`,
//! private): path metrics lane-major (`metrics[s * W + w]`, lane `w` =
//! block `w`), branch metrics a `2^n × W` plane refilled per step from
//! each lane's own LLRs, and survivors transposed into bit-planes —
//! word `t·S + s` carries one decision bit per *block*. The ACS
//! recursion then vectorizes across blocks, which is the batch shape
//! `BurstPipeline` produces (four spatial streams per burst, many
//! bursts per batch). Dispatch is cost-aware ([`BatchKernel`]): the
//! bitsliced tier pays per lane, so sparse groups — and any build
//! whose per-block tier is the faster 8-lane SIMD kernel — run a
//! per-block loop instead, as do ragged or otherwise ineligible
//! groups; every output is bit-identical to decoding that block alone.

pub mod bits;
mod bitslice;
mod butterfly;
mod conv;
mod puncture;
mod scrambler;
mod simd;
mod viterbi;

pub use bitslice::BatchViterbiWorkspace;
pub use conv::{CodeSpec, CodingError, ConvolutionalEncoder};
pub use puncture::{depuncture, depuncture_into, puncture, puncture_into, CodeRate};
pub use scrambler::{pilot_polarity, Scrambler};
pub use viterbi::{BatchKernel, DecodeProfile, ViterbiDecoder, ViterbiKernel, ViterbiWorkspace};

/// A soft bit (log-likelihood ratio). Positive means "more likely 0",
/// negative "more likely 1", zero is an erasure. Hard bits map to
/// ±[`HARD_LLR`].
pub type Llr = i32;

/// Magnitude used when converting a hard bit to a soft value.
pub const HARD_LLR: Llr = 64;

/// Converts a hard bit (0/1) to its soft representation.
#[inline]
pub fn hard_to_llr(bit: u8) -> Llr {
    if bit == 0 {
        HARD_LLR
    } else {
        -HARD_LLR
    }
}

/// Converts a soft value to a hard bit decision (erasure decides 0).
#[inline]
pub fn llr_to_hard(llr: Llr) -> u8 {
    u8::from(llr < 0)
}
