//! Forward error correction: convolutional encoder, puncturing,
//! Viterbi decoder, and the 802.11a scrambler.
//!
//! The paper's transmitter streams uncoded data into a "generic
//! convolutional encoder" whose data-path width, rate `R` and puncture
//! pattern are set before synthesis (§IV.A); the receiver closes the
//! loop with a Viterbi decoder (§IV.B). The pilot tones are
//! "de-scrambled" at the receiver, which requires the 802.11a
//! 127-periodic polarity sequence.
//!
//! * [`ConvolutionalEncoder`] — K=7 industry code by default
//!   ([`CodeSpec::ieee80211a`]), arbitrary generators supported.
//! * [`CodeRate`] + [`puncture`]/[`depuncture`] — the 802.11a r=2/3 and
//!   r=3/4 puncturing patterns (erasures re-inserted as zero-LLRs).
//! * [`ViterbiDecoder`] — soft-decision add-compare-select with full
//!   block traceback; hard decision is the degenerate ±1 case.
//! * [`Scrambler`] — the x⁷+x⁴+1 LFSR, plus
//!   [`pilot_polarity`] for the pilot sequence.
//! * [`bits`] — bit/byte packing helpers shared by the whole stack.

pub mod bits;
mod conv;
mod puncture;
mod scrambler;
mod viterbi;

pub use conv::{CodeSpec, CodingError, ConvolutionalEncoder};
pub use puncture::{depuncture, depuncture_into, puncture, puncture_into, CodeRate};
pub use scrambler::{pilot_polarity, Scrambler};
pub use viterbi::{ViterbiDecoder, ViterbiWorkspace};

/// A soft bit (log-likelihood ratio). Positive means "more likely 0",
/// negative "more likely 1", zero is an erasure. Hard bits map to
/// ±[`HARD_LLR`].
pub type Llr = i32;

/// Magnitude used when converting a hard bit to a soft value.
pub const HARD_LLR: Llr = 64;

/// Converts a hard bit (0/1) to its soft representation.
#[inline]
pub fn hard_to_llr(bit: u8) -> Llr {
    if bit == 0 {
        HARD_LLR
    } else {
        -HARD_LLR
    }
}

/// Converts a soft value to a hard bit decision (erasure decides 0).
#[inline]
pub fn llr_to_hard(llr: Llr) -> u8 {
    u8::from(llr < 0)
}
