//! 802.11a puncturing: deriving r=2/3 and r=3/4 from the rate-1/2
//! mother code by deleting coded bits, and re-inserting erasures at the
//! receiver.

use crate::{CodingError, Llr};

/// Channel code rate, selecting the puncture pattern applied to the
/// rate-1/2 mother code (802.11a §17.3.5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodeRate {
    /// Rate 1/2 — no puncturing.
    #[default]
    Half,
    /// Rate 2/3 — one of every four mother bits deleted.
    TwoThirds,
    /// Rate 3/4 — two of every six mother bits deleted.
    ThreeQuarters,
}

impl CodeRate {
    /// All rates the transceiver supports.
    pub const ALL: [CodeRate; 3] = [CodeRate::Half, CodeRate::TwoThirds, CodeRate::ThreeQuarters];

    /// The keep-mask over one puncture period of mother-coded bits,
    /// in A0 B0 A1 B1 … order.
    ///
    /// 802.11a patterns: r=2/3 keeps A0 B0 A1 (drops B1); r=3/4 keeps
    /// A0 B0 A1 B2 (drops B1, A2).
    pub fn keep_pattern(self) -> &'static [bool] {
        match self {
            CodeRate::Half => &[true, true],
            CodeRate::TwoThirds => &[true, true, true, false],
            CodeRate::ThreeQuarters => &[true, true, true, false, false, true],
        }
    }

    /// Numerator of the rate fraction.
    pub fn numerator(self) -> usize {
        match self {
            CodeRate::Half => 1,
            CodeRate::TwoThirds => 2,
            CodeRate::ThreeQuarters => 3,
        }
    }

    /// Denominator of the rate fraction.
    pub fn denominator(self) -> usize {
        match self {
            CodeRate::Half => 2,
            CodeRate::TwoThirds => 3,
            CodeRate::ThreeQuarters => 4,
        }
    }

    /// The rate as a float (`numerator / denominator`).
    pub fn as_f64(self) -> f64 {
        self.numerator() as f64 / self.denominator() as f64
    }
}

impl std::fmt::Display for CodeRate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.numerator(), self.denominator())
    }
}

/// Deletes mother-code bits according to the rate's puncture pattern.
///
/// The input is the interleaved A/B output of the rate-1/2 encoder.
///
/// # Examples
///
/// ```
/// use mimo_coding::{puncture, CodeRate};
/// // 8 mother bits at r=3/4 -> first period keeps 4 of 6, then 2 of 2.
/// let kept = puncture(&[1, 1, 0, 0, 1, 1, 0, 0], CodeRate::ThreeQuarters);
/// assert_eq!(kept, vec![1, 1, 0, 1, 0, 0]);
/// ```
pub fn puncture(mother: &[u8], rate: CodeRate) -> Vec<u8> {
    let mut out = Vec::new();
    puncture_into(mother, rate, &mut out);
    out
}

/// Allocation-free [`puncture`] into a caller-owned buffer (cleared
/// first).
pub fn puncture_into(mother: &[u8], rate: CodeRate, out: &mut Vec<u8>) {
    let pattern = rate.keep_pattern();
    out.clear();
    out.extend(
        mother
            .iter()
            .zip(pattern.iter().cycle())
            .filter_map(|(&bit, &keep)| keep.then_some(bit)),
    );
}

/// Re-inserts zero-LLR erasures where bits were punctured, restoring
/// the mother-code length for the Viterbi decoder.
///
/// `mother_len` must be the exact mother-coded length the decoder
/// expects (it determines how many erasures are re-inserted).
///
/// # Errors
///
/// Returns [`CodingError::BadBlockLength`] if `soft.len()` does not
/// match the number of kept positions in `mother_len` mother bits.
pub fn depuncture(soft: &[Llr], rate: CodeRate, mother_len: usize) -> Result<Vec<Llr>, CodingError> {
    let mut out = Vec::new();
    depuncture_into(soft, rate, mother_len, &mut out)?;
    Ok(out)
}

/// Allocation-free [`depuncture`] into a caller-owned buffer (cleared
/// first, then filled to `mother_len`). The steady-state hot path
/// reuses one buffer per stream across bursts.
///
/// # Errors
///
/// Identical to [`depuncture`].
pub fn depuncture_into(
    soft: &[Llr],
    rate: CodeRate,
    mother_len: usize,
    out: &mut Vec<Llr>,
) -> Result<(), CodingError> {
    let pattern = rate.keep_pattern();
    let kept_count = (0..mother_len).filter(|i| pattern[i % pattern.len()]).count();
    if soft.len() != kept_count {
        return Err(CodingError::BadBlockLength {
            got: soft.len(),
            multiple: kept_count,
        });
    }
    out.clear();
    out.reserve(mother_len);
    let mut it = soft.iter();
    for i in 0..mother_len {
        if pattern[i % pattern.len()] {
            // `soft.len() == kept_count` was checked above, so the
            // iterator cannot run dry; a miscount surfaces as the
            // same typed error rather than a panic.
            out.push(it.next().copied().ok_or(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: kept_count,
            })?);
        } else {
            out.push(0); // erasure
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_rate_is_identity() {
        let bits = vec![1, 0, 1, 1, 0, 0, 1, 0];
        assert_eq!(puncture(&bits, CodeRate::Half), bits);
    }

    #[test]
    fn rate_fractions() {
        assert_eq!(CodeRate::Half.as_f64(), 0.5);
        assert!((CodeRate::TwoThirds.as_f64() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CodeRate::ThreeQuarters.as_f64(), 0.75);
        assert_eq!(CodeRate::ThreeQuarters.to_string(), "3/4");
    }

    #[test]
    fn puncture_lengths_match_rate() {
        // 24 mother bits (12 info bits at r=1/2).
        let mother = vec![1u8; 24];
        assert_eq!(puncture(&mother, CodeRate::Half).len(), 24);
        assert_eq!(puncture(&mother, CodeRate::TwoThirds).len(), 18); // 12/18 = 2/3
        assert_eq!(puncture(&mother, CodeRate::ThreeQuarters).len(), 16); // 12/16 = 3/4
    }

    #[test]
    fn depuncture_restores_positions() {
        let mother: Vec<u8> = (0..12).map(|i| (i % 2) as u8).collect();
        for rate in CodeRate::ALL {
            let tx = puncture(&mother, rate);
            let soft: Vec<Llr> = tx.iter().map(|&b| if b == 0 { 10 } else { -10 }).collect();
            let restored = depuncture(&soft, rate, mother.len()).unwrap();
            assert_eq!(restored.len(), mother.len());
            // Every non-erased position must carry the right sign.
            let pattern = rate.keep_pattern();
            for (i, &llr) in restored.iter().enumerate() {
                if pattern[i % pattern.len()] {
                    assert_eq!(llr < 0, mother[i] == 1, "position {i}");
                } else {
                    assert_eq!(llr, 0, "erasure expected at {i}");
                }
            }
        }
    }

    #[test]
    fn depuncture_rejects_wrong_length() {
        let soft = vec![1; 5];
        assert!(depuncture(&soft, CodeRate::ThreeQuarters, 12).is_err());
    }
}
