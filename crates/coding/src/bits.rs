//! Bit/byte packing helpers.
//!
//! Bits are carried as `u8` values of 0 or 1 throughout the coding and
//! modulation stack, least-significant bit of each byte first (the
//! 802.11a transmission order).

/// Unpacks bytes into bits, LSB of each byte first.
///
/// # Examples
///
/// ```
/// use mimo_coding::bits::bytes_to_bits;
/// assert_eq!(bytes_to_bits(&[0b0000_0101]), vec![1, 0, 1, 0, 0, 0, 0, 0]);
/// ```
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    bytes_to_bits_append(bytes, &mut out);
    out
}

/// [`bytes_to_bits`] appending to a caller-owned buffer (no allocation
/// once the buffer has grown) — the single owner of the LSB-first bit
/// order.
pub fn bytes_to_bits_append(bytes: &[u8], out: &mut Vec<u8>) {
    out.reserve(bytes.len() * 8);
    for &byte in bytes {
        for bit in 0..8 {
            out.push((byte >> bit) & 1);
        }
    }
}

/// Packs bits (LSB-first per byte) into bytes. The final partial byte,
/// if any, is zero-padded in its high bits.
///
/// # Examples
///
/// ```
/// use mimo_coding::bits::bits_to_bytes;
/// assert_eq!(bits_to_bytes(&[1, 0, 1]), vec![0b0000_0101]);
/// ```
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    bits_to_bytes_into(bits, &mut out);
    out
}

/// Allocation-free [`bits_to_bytes`] into a caller-owned buffer
/// (cleared first).
pub fn bits_to_bytes_into(bits: &[u8], out: &mut Vec<u8>) {
    out.clear();
    out.reserve(bits.len().div_ceil(8));
    for chunk in bits.chunks(8) {
        let mut byte = 0u8;
        for (i, &bit) in chunk.iter().enumerate() {
            debug_assert!(bit <= 1, "bit values must be 0 or 1");
            byte |= (bit & 1) << i;
        }
        out.push(byte);
    }
}

/// Counts positions where two bit slices differ (Hamming distance over
/// the common prefix).
pub fn hamming_distance(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).filter(|(x, y)| x != y).count()
}

/// CRC-8 (polynomial x⁸+x²+x+1 = 0x07, initial value 0xFF) over a bit
/// stream in transmission order — the frame-header check of the
/// SIGNAL field. The nonzero initial value guarantees an all-zero
/// header (e.g. a silent antenna decoded as zeros) fails the check.
///
/// # Examples
///
/// ```
/// use mimo_coding::bits::crc8_bits;
/// // All-zero input must not produce an all-zero CRC.
/// assert_ne!(crc8_bits(&[0; 20]), 0);
/// ```
pub fn crc8_bits(bits: &[u8]) -> u8 {
    let mut crc: u8 = 0xFF;
    for &bit in bits {
        let fed = (crc >> 7) ^ (bit & 1);
        crc <<= 1;
        if fed != 0 {
            crc ^= 0x07;
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(bits_to_bytes(&bytes_to_bits(&data)), data);
    }

    #[test]
    fn lsb_first_order() {
        assert_eq!(bytes_to_bits(&[0x01]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(bytes_to_bits(&[0x80]), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn partial_byte_zero_padded() {
        assert_eq!(bits_to_bytes(&[1]), vec![1]);
        assert_eq!(bits_to_bytes(&[0, 1]), vec![2]);
    }

    #[test]
    fn hamming() {
        assert_eq!(hamming_distance(&[0, 1, 1], &[0, 1, 1]), 0);
        assert_eq!(hamming_distance(&[0, 1, 1], &[1, 1, 0]), 2);
    }

    #[test]
    fn crc8_detects_single_bit_flips() {
        let msg: Vec<u8> = (0..20).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let good = crc8_bits(&msg);
        for flip in 0..msg.len() {
            let mut bad = msg.clone();
            bad[flip] ^= 1;
            assert_ne!(crc8_bits(&bad), good, "flip at {flip} undetected");
        }
    }

    #[test]
    fn crc8_known_answer_is_stable() {
        // Pinned so the SIGNAL-field golden vector cannot drift.
        assert_eq!(crc8_bits(&[]), 0xFF);
        assert_eq!(crc8_bits(&[1]), 0xFE);
        assert_eq!(crc8_bits(&[0]), 0xFE ^ 0x07);
    }
}
