//! 8-lane SIMD tier of the butterfly ACS kernel.
//!
//! The paper's Viterbi core reaches its rate by replicating the ACS
//! butterfly in fabric; this module is the software analogue of that
//! lane replication. One [`SimdTrellis::acs_step`] call performs the
//! add-compare-select of eight butterflies (sixteen states) at once on
//! `i32` metric lanes, producing the same ping-pong rows and survivor
//! bitmasks as [`ButterflyTrellis::acs_step`] — decision for decision.
//!
//! # Lane layout
//!
//! For butterflies `j = base..base+8` the kernel needs the metric pairs
//! `cur[2j]`/`cur[2j+1]`. Those sixteen values are two contiguous
//! 8-lane loads; an in-register even/odd de-interleave (a `vpermd` per
//! load plus two 128-bit shuffles on AVX2) yields the `m0` vector
//! (predecessors `2j`) and `m1` vector (predecessors `2j+1`). Branch
//! metrics are gathered from the (≤ 8 entry) branch-metric table with a
//! `vpermd` over the per-slot label vectors prebuilt by
//! [`SimdTrellis::new`]. The two compare-selects per butterfly then run
//! vertically: `sel = b > a` keeps the scalar tie-break (lower
//! predecessor `2j` wins equality), the select writes successor rows
//! `j` and `half + j` as two contiguous stores, and the eight decision
//! bits drop out of a sign-bit movemask straight into the survivor
//! word — `base` is a multiple of 8, so the shifted mask never
//! straddles a `u64` boundary.
//!
//! # Tiers and eligibility
//!
//! Two lane implementations sit behind one seam: AVX2 intrinsics when
//! `is_x86_feature_detected!` reports support at run time, and a
//! portable fixed-width-array version (written so the autovectorizer
//! can chew on it) everywhere else. Construction fails — and the
//! dispatcher falls back to the scalar butterfly kernel — when the code
//! shape does not fit the lanes: more than 3 output bits per input
//! (branch-metric table longer than one 8-lane register) or fewer than
//! 16 states (`half % 8 != 0`). The paper's K=7 rate-1/2 code passes
//! both tests.

use crate::butterfly::ButterflyTrellis;

/// Metric lanes per step — one AVX2 register of `i32`.
const LANES: usize = 8;

/// Which lane implementation backs [`SimdTrellis::acs_step`], fixed at
/// construction from runtime CPU-feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneKernel {
    /// AVX2 intrinsics (x86-64 with runtime `avx2` support).
    #[cfg(target_arch = "x86_64")]
    Avx2,
    /// Portable fixed-width arrays; the compiler's autovectorizer is
    /// the only hardware dependency.
    Portable,
}

/// Precomputed 8-lane view of a [`ButterflyTrellis`].
#[derive(Debug, Clone)]
pub(crate) struct SimdTrellis {
    /// Per transition slot (the `coded[j][2*b + p]` layout of
    /// [`ButterflyTrellis::labels`]), the coded label of every
    /// butterfly widened to `i32` so a label vector is a direct
    /// unaligned load.
    labels: [Vec<i32>; 4],
    /// `states / 2` — butterflies per step; a multiple of [`LANES`].
    half: usize,
    /// The lane implementation selected at construction.
    kernel: LaneKernel,
}

impl SimdTrellis {
    /// Builds the lane tables, or `None` when the code shape does not
    /// fit the 8-lane kernel (see the module docs); callers then stay
    /// on the scalar butterfly tier.
    pub(crate) fn new(bf: &ButterflyTrellis) -> Option<Self> {
        let half = bf.n_states() / 2;
        if bf.table_len() > LANES || !half.is_multiple_of(LANES) {
            return None;
        }
        let mut labels: [Vec<i32>; 4] = Default::default();
        for (slot, lane) in labels.iter_mut().enumerate() {
            lane.extend(bf.labels().iter().map(|c| i32::from(c[slot])));
        }
        Some(Self {
            labels,
            half,
            kernel: pick_kernel(),
        })
    }

    /// Name of the lane implementation actually selected — what the
    /// benches record so numbers from different hosts are comparable.
    pub(crate) fn name(&self) -> &'static str {
        match self.kernel {
            #[cfg(target_arch = "x86_64")]
            LaneKernel::Avx2 => "simd-avx2",
            LaneKernel::Portable => "simd-portable",
        }
    }

    /// 8-lane add-compare-select over all butterflies — drop-in for
    /// [`ButterflyTrellis::acs_step`]: same rows, same survivor words,
    /// same tie-breaks, bit-identical output.
    ///
    /// `bm` may be shorter than a register (`2^n` entries); it is
    /// staged through a zero-padded stack array so the lane gathers
    /// always read 8 lanes. The padding is never *selected* — labels
    /// are `< 2^n` — so it cannot affect any metric.
    // phylint: hot
    #[inline]
    pub(crate) fn acs_step(&self, bm: &[i32], cur: &[i32], nxt: &mut [i32], surv: &mut [u64]) {
        let mut bm8 = [0i32; LANES];
        let n = bm.len().min(LANES);
        bm8[..n].copy_from_slice(&bm[..n]);
        surv.fill(0);
        match self.kernel {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the `Avx2` variant is only constructed after
            // `is_x86_feature_detected!("avx2")` reported support on
            // this CPU, so the target-feature contract holds.
            // phylint: allow(simd_guard) -- the `Avx2` kernel variant is only constructed after `is_x86_feature_detected!("avx2")` succeeded in `pick_kernel`, so this dispatch site is feature-guarded at construction time
            LaneKernel::Avx2 => unsafe { self.acs_step_avx2(&bm8, cur, nxt, surv) },
            LaneKernel::Portable => self.acs_step_portable(&bm8, cur, nxt, surv),
        }
    }

    /// Portable lane tier: the same 8-butterfly blocks as the AVX2
    /// path, phrased as fixed-width array arithmetic.
    fn acs_step_portable(&self, bm: &[i32; LANES], cur: &[i32], nxt: &mut [i32], surv: &mut [u64]) {
        let half = self.half;
        let (lo, hi) = nxt.split_at_mut(half);
        let mut base = 0usize;
        while base + LANES <= half {
            let mut m0 = [0i32; LANES];
            let mut m1 = [0i32; LANES];
            for k in 0..LANES {
                m0[k] = cur[2 * (base + k)];
                m1[k] = cur[2 * (base + k) + 1];
            }
            let mut lo_bits = 0u64;
            let mut hi_bits = 0u64;
            for k in 0..LANES {
                let j = base + k;
                let a = m0[k] + bm[self.labels[0][j] as usize];
                let b = m1[k] + bm[self.labels[1][j] as usize];
                let sel = b > a;
                lo[j] = if sel { b } else { a };
                lo_bits |= u64::from(sel) << k;
                let a = m0[k] + bm[self.labels[2][j] as usize];
                let b = m1[k] + bm[self.labels[3][j] as usize];
                let sel = b > a;
                hi[j] = if sel { b } else { a };
                hi_bits |= u64::from(sel) << k;
            }
            surv[base >> 6] |= lo_bits << (base & 63);
            let hb = half + base;
            surv[hb >> 6] |= hi_bits << (hb & 63);
            base += LANES;
        }
    }

    /// AVX2 lane tier. See the module docs for the register
    /// choreography; every operation is the vector twin of one line of
    /// the scalar butterfly loop.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    // SAFETY: callers must have verified AVX2 support at run
    // time (enforced by construction — `LaneKernel::Avx2` exists only
    // behind a positive `is_x86_feature_detected!`). All loads/stores
    // are unaligned-safe intrinsics and stay in bounds: `new`
    // guarantees `half % 8 == 0`, `labels[_].len() == half`, callers
    // pass `cur`/`nxt` of `2 * half` elements, labels are `< 8` so the
    // `bm` gathers index inside one register, and `base % 8 == 0`
    // keeps every survivor-mask shift inside one `u64`.
    unsafe fn acs_step_avx2(
        &self,
        bm: &[i32; LANES],
        cur: &[i32],
        nxt: &mut [i32],
        surv: &mut [u64],
    ) {
        use std::arch::x86_64::*;
        let half = self.half;
        // Even/odd de-interleave pattern: [0,2,4,6 | 1,3,5,7].
        let idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
        let bmv = _mm256_loadu_si256(bm.as_ptr().cast());
        let (lo, hi) = nxt.split_at_mut(half);
        let mut base = 0usize;
        while base + LANES <= half {
            // Sixteen predecessor metrics -> m0 = cur[2j], m1 = cur[2j+1].
            let v0 = _mm256_loadu_si256(cur.as_ptr().add(2 * base).cast());
            let v1 = _mm256_loadu_si256(cur.as_ptr().add(2 * base + LANES).cast());
            let p0 = _mm256_permutevar8x32_epi32(v0, idx);
            let p1 = _mm256_permutevar8x32_epi32(v1, idx);
            let m0 = _mm256_permute2x128_si256(p0, p1, 0x20);
            let m1 = _mm256_permute2x128_si256(p0, p1, 0x31);
            // Gather the four branch metrics per butterfly from the
            // in-register table via the prebuilt label vectors.
            let l0 = _mm256_loadu_si256(self.labels[0].as_ptr().add(base).cast());
            let l1 = _mm256_loadu_si256(self.labels[1].as_ptr().add(base).cast());
            let l2 = _mm256_loadu_si256(self.labels[2].as_ptr().add(base).cast());
            let l3 = _mm256_loadu_si256(self.labels[3].as_ptr().add(base).cast());
            let g0 = _mm256_permutevar8x32_epi32(bmv, l0);
            let g1 = _mm256_permutevar8x32_epi32(bmv, l1);
            let g2 = _mm256_permutevar8x32_epi32(bmv, l2);
            let g3 = _mm256_permutevar8x32_epi32(bmv, l3);
            // Successor j (input 0): a = m0 + bm[c0], b = m1 + bm[c1];
            // max keeps `a` on ties, matching `if b > a { b } else { a }`.
            let a = _mm256_add_epi32(m0, g0);
            let b = _mm256_add_epi32(m1, g1);
            let sel = _mm256_cmpgt_epi32(b, a);
            _mm256_storeu_si256(lo.as_mut_ptr().add(base).cast(), _mm256_max_epi32(a, b));
            let lo_bits = _mm256_movemask_ps(_mm256_castsi256_ps(sel)) as u32 as u64;
            // Successor half + j (input 1).
            let a = _mm256_add_epi32(m0, g2);
            let b = _mm256_add_epi32(m1, g3);
            let sel = _mm256_cmpgt_epi32(b, a);
            _mm256_storeu_si256(hi.as_mut_ptr().add(base).cast(), _mm256_max_epi32(a, b));
            let hi_bits = _mm256_movemask_ps(_mm256_castsi256_ps(sel)) as u32 as u64;
            surv[base >> 6] |= lo_bits << (base & 63);
            let hb = half + base;
            surv[hb >> 6] |= hi_bits << (hb & 63);
            base += LANES;
        }
    }
    // phylint: end-hot
}

/// Runtime CPU-feature probe, evaluated once per decoder construction.
fn pick_kernel() -> LaneKernel {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return LaneKernel::Avx2;
    }
    LaneKernel::Portable
}
