//! The radix-2 butterfly ACS kernel — the software analogue of the
//! paper's add-compare-select array.
//!
//! The hardware Viterbi core reaches its throughput by instantiating
//! one ACS butterfly per state *pair* and a survivor RAM that stores a
//! single decision bit per state per branch. This module restructures
//! the software inner loop the same way:
//!
//! * **Branch-metric table.** For an `n`-output code there are only
//!   `2^n` distinct coded branch labels, so the per-branch correlation
//!   against the LLRs is computed once per trellis step into a tiny
//!   table ([`fill_bm_table`]) instead of once per state transition —
//!   the scalar kernel's `states × inputs × n` multiply-accumulate
//!   collapses to `2^n × n`.
//! * **Butterfly pairing.** A binary shift-register trellis maps
//!   predecessor states `2j` and `2j+1` onto successor states `j` and
//!   `j + S/2` (`S` states). Walking the `S/2` butterflies visits each
//!   predecessor metric exactly once and writes each successor exactly
//!   once ([`acs_step`]) — no scatter, no "skip unreachable state"
//!   branches, and the compare-select pair for both successors shares
//!   the two loaded path metrics, mirroring the paper's ACS array.
//! * **Ping-pong metric rows.** Path metrics live in two flat `i32`
//!   rows swapped per branch, renormalized every
//!   [`NORM_INTERVAL`] branches by subtracting the row maximum — a
//!   uniform shift that cannot change any compare, exactly like the
//!   modulo/rescale normalization of a fixed-width hardware ACS.
//! * **Bitmask survivors.** Because each successor has exactly two
//!   candidate predecessors, one decision *bit* per state suffices: a
//!   branch's decisions pack into `⌈S/64⌉` `u64` words (one word for
//!   the paper's 64-state K=7 code) — the survivor RAM — and traceback
//!   becomes a shift-and-mask walk ([`traceback_state`]).
//!
//! The kernel is exact: decisions, tie-breaks (lower predecessor wins,
//! matching the scalar kernel's iteration order) and therefore decoded
//! outputs are **bit-identical** to the reference scalar kernel
//! whenever [`ButterflyTrellis::safe_for`] accepts the input (LLR
//! magnitudes small enough that `i32` path metrics cannot wrap between
//! renormalizations — every sane demapper output qualifies; the
//! dispatcher falls back to the scalar kernel otherwise).

use crate::{CodeSpec, Llr};

/// Branches between metric renormalizations. Must exceed `K - 1` (≤ 8)
/// so the start-up `NEG_INF` padding has died out before the first
/// uniform shift, and small enough that metrics cannot overflow in
/// between (see [`ButterflyTrellis::safe_for`]).
pub(crate) const NORM_INTERVAL: usize = 64;

/// Sentinel for an unreachable state in the `i32` metric rows. Real
/// paths always beat it: with branch metrics bounded by
/// [`ButterflyTrellis::max_branch_metric`], a path seeded from this
/// floor stays hundreds of millions below any live path for the `K-1`
/// branches the floor can survive.
pub(crate) const NEG_INF_I32: i32 = i32::MIN / 4;

/// Largest per-branch metric magnitude the `i32` rows tolerate without
/// wrapping: `NORM_INTERVAL` branches of drift plus the trellis spread
/// stay well inside `i32` range, and the `NEG_INF_I32` floor keeps its
/// margin (see the module docs for the arithmetic).
const MAX_BRANCH_METRIC: i64 = 1 << 23;

/// Precomputed butterfly view of a [`CodeSpec`] trellis.
#[derive(Debug, Clone)]
pub(crate) struct ButterflyTrellis {
    /// Coded branch labels per butterfly `j`, indexed
    /// `[prev = 2j+p, input = b]` as `coded[j][2*b + p]`: the four
    /// transitions of one butterfly.
    coded: Vec<[u8; 4]>,
    /// `2^n` branch-metric table length (`n` = outputs per input).
    table_len: usize,
    /// `K`.
    constraint_length: usize,
    /// `2^(K-1)`.
    n_states: usize,
    /// Largest LLR magnitude the `i32` kernel accepts.
    max_abs_llr: i64,
}

impl ButterflyTrellis {
    /// Builds the butterfly tables, or `None` when the code has too
    /// many generators for a branch-metric table (`> 8` outputs per
    /// input would need a 256+-entry table per branch; such codes fall
    /// back to the scalar kernel).
    pub(crate) fn new(spec: &CodeSpec) -> Option<Self> {
        let n_out = spec.outputs_per_input();
        if n_out > 8 {
            return None;
        }
        let n_states = spec.num_states();
        let half = n_states / 2;
        let coded = (0..half)
            .map(|j| {
                let mut c = [0u8; 4];
                for (slot, (prev, input)) in [(2 * j, 0u8), (2 * j + 1, 0), (2 * j, 1), (2 * j + 1, 1)]
                    .iter()
                    .enumerate()
                {
                    let (bits, next) = spec.step(*prev as u32, *input);
                    debug_assert_eq!(
                        next as usize,
                        (usize::from(*input) << (spec.constraint_length() - 2)) | j,
                        "trellis is not the canonical shift-register butterfly"
                    );
                    c[slot] = bits as u8;
                }
                c
            })
            .collect();
        Some(Self {
            coded,
            table_len: 1 << n_out,
            constraint_length: spec.constraint_length(),
            n_states,
            max_abs_llr: MAX_BRANCH_METRIC / n_out as i64,
        })
    }

    /// Number of trellis states.
    pub(crate) fn n_states(&self) -> usize {
        self.n_states
    }

    /// Branch-metric table length (`2^n`).
    pub(crate) fn table_len(&self) -> usize {
        self.table_len
    }

    /// Survivor words per trellis step (`⌈states/64⌉`; 1 for K ≤ 7).
    pub(crate) fn words_per_step(&self) -> usize {
        self.n_states.div_ceil(64)
    }

    /// The coded branch labels, one `[u8; 4]` per butterfly `j` in the
    /// `coded[j][2*b + p]` layout — shared with the SIMD and bitsliced
    /// kernels so all three tiers walk one table.
    pub(crate) fn labels(&self) -> &[[u8; 4]] {
        &self.coded
    }

    /// Whether every LLR in `soft` is small enough for the `i32`
    /// metric rows to be exact (no wrap between renormalizations).
    pub(crate) fn safe_for(&self, soft: &[Llr]) -> bool {
        soft.iter().all(|&l| (l as i64).abs() <= self.max_abs_llr)
    }

    /// One add-compare-select step over all butterflies: consumes the
    /// `cur` metric row, fills `nxt` and the branch's survivor words.
    ///
    /// Tie-break matches the scalar kernel: the lower-numbered
    /// predecessor (`2j`) wins on equality, so a set decision bit
    /// always means "`2j+1` was strictly better".
    // phylint: hot
    #[inline]
    pub(crate) fn acs_step(&self, bm: &[i32], cur: &[i32], nxt: &mut [i32], surv: &mut [u64]) {
        let half = self.coded.len();
        surv.fill(0);
        let (lo, hi) = nxt.split_at_mut(half);
        for (j, ((c, prev), (nl, nh))) in self
            .coded
            .iter()
            .zip(cur.chunks_exact(2))
            .zip(lo.iter_mut().zip(hi.iter_mut()))
            .enumerate()
        {
            let m0 = prev[0];
            let m1 = prev[1];
            // Successor j (input 0).
            let a = m0 + bm[c[0] as usize];
            let b = m1 + bm[c[1] as usize];
            let sel = b > a;
            *nl = if sel { b } else { a };
            surv[j >> 6] |= u64::from(sel) << (j & 63);
            // Successor j + S/2 (input 1).
            let a = m0 + bm[c[2] as usize];
            let b = m1 + bm[c[3] as usize];
            let sel = b > a;
            *nh = if sel { b } else { a };
            let s = half + j;
            surv[s >> 6] |= u64::from(sel) << (s & 63);
        }
    }

    /// One traceback step: given the state *after* some branch and
    /// that branch's survivor words, returns `(decoded_bit, prev_state)`.
    #[inline]
    pub(crate) fn traceback_state(&self, state: usize, surv: &[u64]) -> (u8, usize) {
        let bit = (state >> (self.constraint_length - 2)) as u8 & 1;
        let sel = (surv[state >> 6] >> (state & 63)) & 1;
        let prev = ((state & (self.n_states / 2 - 1)) << 1) | sel as usize;
        (bit, prev)
    }
}

/// Fills the per-branch metric table: `bm[c]` is the correlation of
/// coded label `c` with the branch LLRs (positive LLR favours bit 0),
/// identical to the scalar kernel's per-transition accumulation.
#[inline]
pub(crate) fn fill_bm_table(branch: &[Llr], bm: &mut [i32]) {
    for (c, slot) in bm.iter_mut().enumerate() {
        let mut acc = 0i32;
        for (i, &l) in branch.iter().enumerate() {
            acc += if (c >> i) & 1 == 0 { l } else { -l };
        }
        *slot = acc;
    }
}

/// Subtracts the row maximum from every metric — a uniform shift that
/// preserves every future compare while pinning the row near zero.
#[inline]
pub(crate) fn normalize_row(row: &mut [i32]) {
    let best = row.iter().copied().max().unwrap_or(0);
    for m in row {
        *m -= best;
    }
}
// phylint: end-hot

/// Index of the best end-state metric, ties resolved exactly like the
/// scalar kernel's `max_by_key` (the last maximum wins).
#[inline]
pub(crate) fn best_state(metrics: &[i32]) -> usize {
    metrics
        .iter()
        .enumerate()
        .max_by_key(|(_, &m)| m)
        .map(|(s, _)| s)
        .unwrap_or(0)
}
