//! The generic convolutional encoder.
//!
//! "A generic convolutional encoder has been developed. Prior to logic
//! synthesis, a user can specify the data-path width, data rate R and
//! the puncture pattern." (§IV.A). The software model mirrors that: the
//! code is described by a [`CodeSpec`] (constraint length, generator
//! polynomials, data-path width), and puncturing is applied as a
//! separate stage (see [`crate::puncture`]).

use std::error::Error;
use std::fmt;

/// Errors produced when building or running the coding blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodingError {
    /// Constraint length outside the supported 3..=9 range.
    BadConstraintLength(usize),
    /// A generator polynomial has taps beyond the constraint length.
    BadGenerator {
        /// The offending polynomial (octal convention, as written).
        generator: u32,
        /// Configured constraint length.
        constraint_length: usize,
    },
    /// Fewer than two generators (rate above 1 is not a code).
    TooFewGenerators,
    /// Input to the decoder is not a multiple of the branch width.
    BadBlockLength {
        /// Length supplied.
        got: usize,
        /// Required multiple.
        multiple: usize,
    },
}

impl fmt::Display for CodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodingError::BadConstraintLength(k) => {
                write!(f, "constraint length {k} unsupported (expected 3..=9)")
            }
            CodingError::BadGenerator {
                generator,
                constraint_length,
            } => write!(
                f,
                "generator {generator:o} has taps beyond constraint length {constraint_length}"
            ),
            CodingError::TooFewGenerators => write!(f, "at least two generator polynomials required"),
            CodingError::BadBlockLength { got, multiple } => {
                write!(f, "coded block length {got} is not a multiple of {multiple}")
            }
        }
    }
}

impl Error for CodingError {}

/// Static description of a convolutional code, the synthesis-time
/// "generics" of the paper's encoder entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSpec {
    constraint_length: usize,
    generators: Vec<u32>,
    data_path_width: usize,
}

impl CodeSpec {
    /// The industry-standard K=7 code used by 802.11a: generators
    /// 133/171 (octal), mother rate 1/2.
    pub fn ieee80211a() -> Self {
        // Constructed directly: the field invariants `new` checks
        // (K in range, generators fit K bits, nonzero width) hold for
        // these literals, and the equivalence with `new` is pinned by
        // the spec tests below.
        Self {
            constraint_length: 7,
            generators: vec![0o133, 0o171],
            data_path_width: 8,
        }
    }

    /// Creates a custom code.
    ///
    /// `generators` use the usual convention: bit `K-1` is the tap on
    /// the newest input bit. `data_path_width` is the number of input
    /// bits the hardware entity processes per clock (it does not change
    /// the encoding, only the cycle model).
    ///
    /// # Errors
    ///
    /// Rejects constraint lengths outside 3..=9, generator polynomials
    /// with taps beyond the constraint length, and fewer than two
    /// generators.
    pub fn new(
        constraint_length: usize,
        generators: Vec<u32>,
        data_path_width: usize,
    ) -> Result<Self, CodingError> {
        if !(3..=9).contains(&constraint_length) {
            return Err(CodingError::BadConstraintLength(constraint_length));
        }
        if generators.len() < 2 {
            return Err(CodingError::TooFewGenerators);
        }
        for &g in &generators {
            if g >= (1 << constraint_length) || g == 0 {
                return Err(CodingError::BadGenerator {
                    generator: g,
                    constraint_length,
                });
            }
        }
        Ok(Self {
            constraint_length,
            generators,
            data_path_width: data_path_width.max(1),
        })
    }

    /// Constraint length K.
    pub fn constraint_length(&self) -> usize {
        self.constraint_length
    }

    /// Generator polynomials.
    pub fn generators(&self) -> &[u32] {
        &self.generators
    }

    /// Coded bits emitted per input bit (the inverse of the mother
    /// rate): 2 for a rate-1/2 code.
    pub fn outputs_per_input(&self) -> usize {
        self.generators.len()
    }

    /// Number of trellis states (`2^(K-1)`).
    pub fn num_states(&self) -> usize {
        1 << (self.constraint_length - 1)
    }

    /// Hardware data-path width in bits per clock.
    pub fn data_path_width(&self) -> usize {
        self.data_path_width
    }

    /// Clock cycles the hardware entity needs to encode `n_bits`.
    pub fn encode_cycles(&self, n_bits: usize) -> u64 {
        (n_bits as u64).div_ceil(self.data_path_width as u64)
    }

    /// Coded outputs for one input bit entering state `state`.
    /// Returns (`coded_bits` packed LSB = generator 0, `next_state`).
    #[inline]
    pub(crate) fn step(&self, state: u32, input: u8) -> (u32, u32) {
        let k = self.constraint_length;
        // Shift register: newest bit in the MSB position (bit K-1).
        let reg = (u32::from(input) << (k - 1)) | state;
        let mut coded = 0u32;
        for (i, &g) in self.generators.iter().enumerate() {
            let parity = (reg & g).count_ones() & 1;
            coded |= parity << i;
        }
        let next_state = reg >> 1;
        (coded, next_state)
    }
}

impl Default for CodeSpec {
    fn default() -> Self {
        Self::ieee80211a()
    }
}

/// Streaming convolutional encoder.
///
/// # Examples
///
/// ```
/// use mimo_coding::{CodeSpec, ConvolutionalEncoder};
///
/// let mut enc = ConvolutionalEncoder::new(CodeSpec::ieee80211a());
/// let coded = enc.encode_terminated(&[1, 0, 1, 1]);
/// // Rate 1/2 with K-1 = 6 flush bits: (4 + 6) * 2 coded bits.
/// assert_eq!(coded.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct ConvolutionalEncoder {
    spec: CodeSpec,
    state: u32,
}

impl ConvolutionalEncoder {
    /// Creates an encoder in the all-zero state.
    pub fn new(spec: CodeSpec) -> Self {
        Self { spec, state: 0 }
    }

    /// The code this encoder implements.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Resets the shift register to the all-zero state.
    pub fn reset(&mut self) {
        self.state = 0;
    }

    /// Encodes a stream of bits, continuing from the current state.
    /// Output order: for each input bit, one bit per generator.
    pub fn encode(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_append(input, &mut out);
        out
    }

    /// [`ConvolutionalEncoder::encode`] appending to a caller-owned
    /// buffer (no allocation once the buffer has grown).
    pub fn encode_append(&mut self, input: &[u8], out: &mut Vec<u8>) {
        let n_out = self.spec.outputs_per_input();
        out.reserve(input.len() * n_out);
        for &bit in input {
            debug_assert!(bit <= 1, "bit values must be 0 or 1");
            let (coded, next) = self.spec.step(self.state, bit & 1);
            self.state = next;
            for i in 0..n_out {
                out.push(((coded >> i) & 1) as u8);
            }
        }
    }

    /// Encodes a block and appends `K-1` zero flush bits so the trellis
    /// terminates in state 0 (the framing used per OFDM burst).
    /// The encoder is reset afterwards.
    pub fn encode_terminated(&mut self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_terminated_into(input, &mut out);
        out
    }

    /// Allocation-free [`ConvolutionalEncoder::encode_terminated`] into
    /// a caller-owned buffer (cleared first).
    pub fn encode_terminated_into(&mut self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        self.encode_append(input, out);
        // Generators are u32 polynomials, so K − 1 < 32 always.
        let flush = [0u8; 32];
        let k = self.spec.constraint_length();
        self.encode_append(&flush[..k - 1], out);
        self.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        assert!(CodeSpec::new(2, vec![1, 3], 8).is_err());
        assert!(CodeSpec::new(7, vec![0o133], 8).is_err());
        assert!(CodeSpec::new(7, vec![0o133, 0o400], 8).is_err());
        assert!(CodeSpec::new(7, vec![0o133, 0o171], 8).is_ok());
    }

    #[test]
    fn ieee_spec_parameters() {
        let spec = CodeSpec::ieee80211a();
        assert_eq!(spec.constraint_length(), 7);
        assert_eq!(spec.num_states(), 64);
        assert_eq!(spec.outputs_per_input(), 2);
        assert_eq!(spec.generators(), &[0o133, 0o171]);
    }

    #[test]
    fn impulse_response_is_generators() {
        // Encoding a single 1 followed by K-1 zeros reads out each
        // generator polynomial MSB-first.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let coded = enc.encode_terminated(&[1]);
        let g0 = 0o133u32;
        let g1 = 0o171u32;
        for t in 0..7 {
            let expect0 = ((g0 >> (6 - t)) & 1) as u8;
            let expect1 = ((g1 >> (6 - t)) & 1) as u8;
            assert_eq!(coded[2 * t as usize], expect0, "g0 tap {t}");
            assert_eq!(coded[2 * t as usize + 1], expect1, "g1 tap {t}");
        }
    }

    #[test]
    fn all_zero_input_gives_all_zero_output() {
        let mut enc = ConvolutionalEncoder::new(CodeSpec::ieee80211a());
        assert!(enc.encode_terminated(&[0; 32]).iter().all(|&b| b == 0));
    }

    #[test]
    fn encoding_is_linear_over_gf2() {
        let spec = CodeSpec::ieee80211a();
        let a: Vec<u8> = (0..40).map(|i| ((i * 7) % 3 == 0) as u8).collect();
        let b: Vec<u8> = (0..40).map(|i| ((i * 5) % 4 == 1) as u8).collect();
        let xor: Vec<u8> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        let mut enc = ConvolutionalEncoder::new(spec);
        let ca = enc.encode_terminated(&a);
        let cb = enc.encode_terminated(&b);
        let cxor = enc.encode_terminated(&xor);
        let expected: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        assert_eq!(cxor, expected);
    }

    #[test]
    fn terminated_encoding_resets_state() {
        let mut enc = ConvolutionalEncoder::new(CodeSpec::ieee80211a());
        let first = enc.encode_terminated(&[1, 1, 0, 1]);
        let second = enc.encode_terminated(&[1, 1, 0, 1]);
        assert_eq!(first, second);
    }

    #[test]
    fn cycle_model_uses_data_path_width() {
        let spec = CodeSpec::new(7, vec![0o133, 0o171], 8).unwrap();
        assert_eq!(spec.encode_cycles(64), 8);
        assert_eq!(spec.encode_cycles(65), 9);
        let serial = CodeSpec::new(7, vec![0o133, 0o171], 1).unwrap();
        assert_eq!(serial.encode_cycles(64), 64);
    }

    #[test]
    fn error_display() {
        let err = CodeSpec::new(12, vec![1, 2], 1).unwrap_err();
        assert!(err.to_string().contains("12"));
    }
}
