//! Bitsliced many-burst Viterbi: decode up to 64 independent blocks of
//! one code simultaneously.
//!
//! `BurstPipeline` naturally produces batches of same-code blocks (four
//! spatial streams per burst, many bursts per batch). Decoding them one
//! at a time leaves lane-level parallelism on the table: the trellis
//! walk is identical for every block — only the LLRs differ — so the
//! add-compare-select recursion vectorizes *across blocks* instead of
//! across states.
//!
//! # Bit-plane packing
//!
//! * **Metrics.** Path metrics are stored lane-major: `metrics[s * W +
//!   w]` is state `s` of lane (block) `w`, with `W` the lane count
//!   rounded up to a multiple of 8 so the inner loop is fixed-width
//!   vector arithmetic. Padding lanes decode an all-zero-LLR block —
//!   well-defined, cheap, and isolated, since every operation is
//!   per-lane (no cross-lane arithmetic, so a pad lane can never
//!   perturb a real one).
//! * **Branch metrics.** The `2^n`-entry correlation table of the
//!   butterfly kernel becomes a `2^n × W` plane refilled per trellis
//!   step from each lane's own branch LLRs.
//! * **Survivors.** One decision *bit* per state per lane: survivor
//!   word `planes[t * states + s]` holds bit `w` = lane `w`'s decision
//!   for state `s` at step `t` — the bit-plane transpose of the
//!   butterfly kernel's per-block survivor masks. Decision bytes are
//!   packed eight at a time with a carry-free multiply gather (every
//!   `(byte, bit)` product lands on a distinct bit, so no carries).
//! * **Traceback.** Per real lane, the usual shift-and-mask walk from
//!   state 0 (blocks are terminated), reading bit `w` of each plane
//!   word.
//!
//! The recursion performs exactly the butterfly kernel's `i32`
//! arithmetic per lane — same tie-breaks, same `NORM_INTERVAL`
//! renormalization (per lane), same initial row — so each lane's output
//! is bit-identical to decoding that block alone, which the property
//! suite pins for every batch width 1..=64 and for ragged fallbacks.

use crate::butterfly::{ButterflyTrellis, NEG_INF_I32, NORM_INTERVAL};
use crate::viterbi::ViterbiWorkspace;
use crate::{CodeSpec, Llr};

/// Maximum blocks per bitsliced group — the width of one survivor word.
pub(crate) const MAX_LANES: usize = 64;

/// Preallocated working state for
/// [`ViterbiDecoder::decode_terminated_batch`](crate::ViterbiDecoder::decode_terminated_batch):
/// lane-major metric planes, survivor bit-planes, per-lane outputs, and
/// a scalar scratch workspace for groups that fall back to per-block
/// decoding. One workspace per decoding thread; buffers grow to the
/// largest batch seen and are reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct BatchViterbiWorkspace {
    /// Lane-major path metrics for the current branch (`states × W`).
    pub(crate) metrics: Vec<i32>,
    /// Ping-pong partner of `metrics`.
    pub(crate) next: Vec<i32>,
    /// Per-lane branch-metric plane (`2^n × W`), refilled per step.
    pub(crate) bmt: Vec<i32>,
    /// Survivor bit-planes: `planes[t * states + s]`, bit `w` per lane.
    pub(crate) planes: Vec<u64>,
    /// Per-lane row maximum, for the periodic renormalization.
    pub(crate) rowmax: Vec<i32>,
    /// Decoded bits per input block (flush tail already stripped).
    pub(crate) outs: Vec<Vec<u8>>,
    /// Scalar/butterfly scratch for ineligible (fallback) groups.
    pub(crate) scratch: ViterbiWorkspace,
}

impl BatchViterbiWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The decoded outputs of the last batch, one `Vec<u8>` per input
    /// block in input order.
    pub fn outputs(&self) -> &[Vec<u8>] {
        &self.outs
    }

    /// Mutable view of the last batch's outputs — lets callers
    /// `mem::swap` results out without reallocating.
    pub fn outputs_mut(&mut self) -> &mut [Vec<u8>] {
        &mut self.outs
    }

    /// Sizes the output table for a batch of `n` blocks, keeping the
    /// allocations of however many slots already exist.
    pub(crate) fn reserve_outputs(&mut self, n: usize) {
        self.outs.resize_with(n, Vec::new);
    }
}

/// Packs up to 64 decision bytes (each 0 or 1) into one survivor word,
/// bit `w` = byte `w`. Eight bytes collapse per multiply: with the
/// magic constant, the partial product of byte `i` and constant byte
/// `k` lands on bit `7 + 8i + 7k`, and those positions are pairwise
/// distinct over `i, k ∈ 0..8`, so no carries — bits `56..64` of the
/// product read back exactly bytes `0..8`.
// phylint: hot
#[inline]
fn pack_sel(bytes: &[u8]) -> u64 {
    let mut word = 0u64;
    for (chunk_idx, chunk) in bytes.chunks_exact(8).enumerate() {
        let mut b = [0u8; 8];
        b.copy_from_slice(chunk);
        let bits = u64::from_le_bytes(b).wrapping_mul(0x0102_0408_1020_4080) >> 56;
        word |= bits << (8 * chunk_idx);
    }
    word
}

/// Decodes one eligible group of ≤ [`MAX_LANES`] equal-length
/// terminated blocks, writing `ws.outs[base + w]` for each lane `w`.
///
/// Callers (the batch dispatcher) have already validated the group:
/// non-empty, equal lengths, a whole number of branches, more branches
/// than the flush tail, and every block inside the butterfly kernel's
/// `i32` exactness bound.
pub(crate) fn decode_group(
    spec: &CodeSpec,
    bf: &ButterflyTrellis,
    blocks: &[&[Llr]],
    ws: &mut BatchViterbiWorkspace,
    base: usize,
) {
    let Some(first) = blocks.first() else {
        return;
    };
    let n_out = spec.outputs_per_input();
    let n_branches = first.len() / n_out;
    let n_states = bf.n_states();
    let half = n_states / 2;
    let table_len = bf.table_len();
    let labels = bf.labels();
    let flush = spec.constraint_length() - 1;
    let lanes = blocks.len().next_multiple_of(8).min(MAX_LANES);

    let BatchViterbiWorkspace {
        metrics,
        next,
        bmt,
        planes,
        rowmax,
        outs,
        ..
    } = ws;

    // Lane-major planes: state 0 starts at metric 0 in every lane, all
    // other states at the unreachable floor — per lane, the butterfly
    // kernel's initial row.
    metrics.clear();
    metrics.resize(n_states * lanes, NEG_INF_I32);
    metrics[..lanes].fill(0);
    next.clear();
    next.resize(n_states * lanes, 0);
    // Pre-zeroed once: pad lanes (>= blocks.len()) are never refilled,
    // so they decode all-zero LLRs for the whole group.
    bmt.clear();
    bmt.resize(table_len * lanes, 0);
    rowmax.clear();
    rowmax.resize(lanes, 0);
    if planes.len() < n_branches * n_states {
        planes.resize(n_branches * n_states, 0);
    }

    for t in 0..n_branches {
        // Per-lane branch-metric plane: each lane correlates its own
        // branch LLRs against every coded label, exactly
        // `butterfly::fill_bm_table` with a lane stride.
        for (w, block) in blocks.iter().enumerate() {
            let branch = &block[t * n_out..(t + 1) * n_out];
            for c in 0..table_len {
                let mut acc = 0i32;
                for (i, &l) in branch.iter().enumerate() {
                    acc += if (c >> i) & 1 == 0 { l } else { -l };
                }
                bmt[c * lanes + w] = acc;
            }
        }
        // Vertical ACS: one butterfly at a time, all lanes at once.
        let plane_row = &mut planes[t * n_states..(t + 1) * n_states];
        for j in 0..half {
            let [c0, c1, c2, c3] = labels[j];
            let m0 = &metrics[2 * j * lanes..(2 * j + 1) * lanes];
            let m1 = &metrics[(2 * j + 1) * lanes..(2 * j + 2) * lanes];
            let g0 = &bmt[c0 as usize * lanes..c0 as usize * lanes + lanes];
            let g1 = &bmt[c1 as usize * lanes..c1 as usize * lanes + lanes];
            let g2 = &bmt[c2 as usize * lanes..c2 as usize * lanes + lanes];
            let g3 = &bmt[c3 as usize * lanes..c3 as usize * lanes + lanes];
            let (nlo, nhi) = next.split_at_mut(half * lanes);
            let nl = &mut nlo[j * lanes..(j + 1) * lanes];
            let nh = &mut nhi[j * lanes..(j + 1) * lanes];
            let mut sel_lo = [0u8; MAX_LANES];
            let mut sel_hi = [0u8; MAX_LANES];
            for w in 0..lanes {
                // Successor j (input 0); `sel = b > a` keeps the
                // butterfly tie-break (lower predecessor 2j wins).
                let a = m0[w] + g0[w];
                let b = m1[w] + g1[w];
                let sel = b > a;
                nl[w] = if sel { b } else { a };
                sel_lo[w] = u8::from(sel);
                // Successor half + j (input 1).
                let a = m0[w] + g2[w];
                let b = m1[w] + g3[w];
                let sel = b > a;
                nh[w] = if sel { b } else { a };
                sel_hi[w] = u8::from(sel);
            }
            plane_row[j] = pack_sel(&sel_lo[..lanes]);
            plane_row[half + j] = pack_sel(&sel_hi[..lanes]);
        }
        std::mem::swap(metrics, next);
        if (t + 1) % NORM_INTERVAL == 0 {
            // Per-lane renormalization: subtract each lane's row
            // maximum — the uniform shift `butterfly::normalize_row`
            // applies per block.
            rowmax.fill(i32::MIN);
            for row in metrics.chunks_exact(lanes) {
                for (mx, &m) in rowmax.iter_mut().zip(row) {
                    if m > *mx {
                        *mx = m;
                    }
                }
            }
            for row in metrics.chunks_exact_mut(lanes) {
                for (m, &mx) in row.iter_mut().zip(rowmax.iter()) {
                    *m -= mx;
                }
            }
        }
    }
    // phylint: end-hot

    // Per-lane traceback from state 0 (terminated blocks), reading bit
    // `w` of each survivor plane word; then strip the flush tail.
    let k_top = spec.constraint_length() - 2;
    for (w, out) in outs[base..base + blocks.len()].iter_mut().enumerate() {
        out.clear();
        out.resize(n_branches, 0);
        let mut state = 0usize;
        for t in (0..n_branches).rev() {
            out[t] = ((state >> k_top) & 1) as u8;
            let sel = ((planes[t * n_states + state] >> w) & 1) as usize;
            state = ((state & (half - 1)) << 1) | sel;
        }
        out.truncate(n_branches - flush);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_sel_is_the_identity_on_bytes() {
        let mut bytes = [0u8; MAX_LANES];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = u8::from((i * 7 + 3) % 5 < 2);
        }
        let word = pack_sel(&bytes);
        for (i, &b) in bytes.iter().enumerate() {
            assert_eq!((word >> i) & 1, u64::from(b), "bit {i}");
        }
        // Narrow (one-chunk) packs leave the upper bits clear.
        assert_eq!(pack_sel(&bytes[..8]) >> 8, 0);
    }
}
