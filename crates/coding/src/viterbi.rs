//! Soft-decision Viterbi decoder with full-block traceback.
//!
//! "Error correction is performed using the Viterbi decoder" (§IV.B).
//! The symbol demapper "can be set up to perform hard or soft symbol
//! demapping", so the decoder accepts LLRs; hard decisions are just
//! ±[`HARD_LLR`](crate::HARD_LLR).
//!
//! Three add-compare-select kernel tiers back the public entry points
//! (see [`ViterbiKernel`] for the selection matrix):
//!
//! * The **SIMD tier** ([`crate::simd`]) — with the `simd` cargo
//!   feature, the default for codes whose shape fits 8 metric lanes
//!   (≤ 3 output bits per input, ≥ 16 states): the butterfly walk with
//!   eight butterflies per step in one register row, AVX2 intrinsics
//!   when the CPU has them at run time, a portable fixed-width-array
//!   tier otherwise.
//! * The **butterfly kernel** ([`crate::butterfly`]) — the scalar
//!   radix-2 ACS butterfly walk with a per-branch metric table, `i32`
//!   ping-pong metric rows and one-bit-per-state survivor masks,
//!   mirroring the paper's ACS array + survivor RAM. Roughly 4× the
//!   decoded bits/sec of the reference kernel (see the
//!   `fig_viterbi_acs` bench); the fallback when the SIMD tier is
//!   unavailable or the feature is off.
//! * The **scalar kernel** — the original per-state/per-input loop over
//!   `i64` metrics, retained as the differential-testing reference
//!   (`decode_*_scalar*` methods) and as the automatic fallback for
//!   exotic codes (more than 8 generators) or absurd LLR magnitudes
//!   (above `2^23 / n`, where `i32` path metrics could wrap). Building
//!   with the `scalar-kernel` feature forces it everywhere.
//!
//! A fourth shape — the **bitsliced batch kernel**
//! ([`crate::bitslice`], reached through
//! [`ViterbiDecoder::decode_terminated_batch`]) — runs the same
//! recursion across up to 64 independent blocks at once, one survivor
//! bit-plane per block.
//!
//! All kernels make identical decisions (including tie-breaks), so
//! their outputs are bit-identical — pinned by the crate's property
//! suite.

use crate::bitslice::{self, BatchViterbiWorkspace, MAX_LANES};
use crate::butterfly::{
    best_state, fill_bm_table, normalize_row, ButterflyTrellis, NEG_INF_I32, NORM_INTERVAL,
};
use crate::simd::SimdTrellis;
use crate::{CodeSpec, CodingError, Llr};
use std::time::{Duration, Instant};

/// Preallocated working state for [`ViterbiDecoder`] — metric rows and
/// survivor memory for both kernels. One workspace per decoding thread
/// lets the burst hot path decode with zero steady-state heap
/// allocation: buffers grow to the largest block seen and are reused
/// thereafter.
#[derive(Debug, Clone, Default)]
pub struct ViterbiWorkspace {
    /// Scalar kernel: path metrics for the current branch.
    metrics: Vec<i64>,
    /// Scalar kernel: path metrics being built for the next branch.
    next_metrics: Vec<i64>,
    /// Scalar kernel: flat survivor memory, `survivors[t * n_states +
    /// s]` packing the predecessor state (upper bits) and input bit
    /// (bit 0) of the best path into state `s` at branch `t`.
    survivors: Vec<u32>,
    /// Butterfly kernel: current path-metric row (one `i32` per state).
    row_cur: Vec<i32>,
    /// Butterfly kernel: next path-metric row (ping-pong partner).
    row_next: Vec<i32>,
    /// Butterfly kernel: per-branch metric table (`2^n` entries).
    bm: Vec<i32>,
    /// Butterfly kernel: survivor bitmask words, `⌈states/64⌉` per
    /// branch (one `u64` per branch for the 64-state K=7 code).
    masks: Vec<u64>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures scalar-kernel capacity for `n_branches × n_states`.
    fn prepare_scalar(&mut self, n_branches: usize, n_states: usize) {
        self.metrics.clear();
        self.metrics.resize(n_states, NEG_INF);
        self.next_metrics.clear();
        self.next_metrics.resize(n_states, NEG_INF);
        self.survivors.clear();
        self.survivors.resize(n_branches * n_states, 0);
    }

    /// Ensures butterfly-kernel capacity. Survivor words and the metric
    /// table are fully overwritten by the recursion, so only the metric
    /// rows are (re)initialized here.
    fn prepare_butterfly(&mut self, n_branches: usize, bf: &ButterflyTrellis) {
        let n_states = bf.n_states();
        self.row_cur.clear();
        self.row_cur.resize(n_states, NEG_INF_I32);
        self.row_next.clear();
        self.row_next.resize(n_states, NEG_INF_I32);
        self.bm.resize(bf.table_len(), 0);
        self.masks.resize(n_branches * bf.words_per_step(), 0);
    }
}

/// Sentinel for an unreachable trellis state (scalar kernel).
const NEG_INF: i64 = i64::MIN / 4;

/// Packs a scalar-kernel survivor entry: predecessor state and input.
#[inline]
fn pack_survivor(prev_state: usize, input: u8) -> u32 {
    ((prev_state as u32) << 1) | u32::from(input)
}

/// Unpacks a scalar-kernel survivor entry into `(prev_state, input)`.
#[inline]
fn unpack_survivor(packed: u32) -> (usize, u8) {
    ((packed >> 1) as usize, (packed & 1) as u8)
}

/// A soft-decision Viterbi decoder over the trellis of a [`CodeSpec`].
///
/// The decoder performs add-compare-select over all `2^(K-1)` states
/// per branch and keeps the full survivor memory for an exact
/// end-of-block traceback (the hardware equivalent uses a sliding
/// traceback window; for the paper's burst sizes a full traceback is
/// the exact limit of that architecture). See the `viterbi` module
/// source docs for the two ACS kernels behind the public entry points.
///
/// # Examples
///
/// ```
/// use mimo_coding::{CodeSpec, ConvolutionalEncoder, ViterbiDecoder, hard_to_llr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = CodeSpec::ieee80211a();
/// let mut enc = ConvolutionalEncoder::new(spec.clone());
/// let dec = ViterbiDecoder::new(spec);
///
/// let info = vec![1, 0, 0, 1, 1, 0, 1, 0];
/// let coded = enc.encode_terminated(&info);
/// let soft: Vec<_> = coded.iter().map(|&b| hard_to_llr(b)).collect();
/// let decoded = dec.decode_terminated(&soft)?;
/// assert_eq!(decoded, info);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    spec: CodeSpec,
    /// For each state and input bit: (coded output, next state).
    transitions: Vec<[(u32, u32); 2]>,
    /// Radix-2 butterfly tables (`None` for codes with > 8 outputs).
    butterfly: Option<ButterflyTrellis>,
    /// 8-lane SIMD view of the butterfly tables (`None` when the code
    /// shape does not fit the lanes). Built unconditionally; the
    /// `simd` feature only gates whether [`ViterbiKernel::Auto`]
    /// dispatches to it.
    simd: Option<SimdTrellis>,
}

/// Which add-compare-select kernel tier backs a decode — the
/// `decode_*_with` entry points take one explicitly; everything else
/// uses [`ViterbiKernel::Auto`].
///
/// Selection matrix (feature × runtime detection × code shape):
///
/// | tier        | needs                                                        |
/// |-------------|--------------------------------------------------------------|
/// | `simd`      | code fits 8 lanes (≤ 3 outputs/input, ≥ 16 states); AVX2 at  |
/// |             | run time picks the intrinsic path, else the portable lanes   |
/// | `butterfly` | ≤ 8 outputs/input                                            |
/// | `scalar`    | anything (also the fallback when LLR magnitudes exceed the   |
/// |             | `i32` tiers' exactness bound)                                |
///
/// `Auto` walks that table top-down, skipping the SIMD row unless the
/// `simd` cargo feature is on and skipping both fast rows under the
/// `scalar-kernel` feature. An explicit `Simd`/`Butterfly` request
/// ignores the cargo features (that is what makes differential testing
/// possible on any build) but still falls back down the table when the
/// code or the LLRs disqualify the requested tier — kernel choice can
/// affect only speed, never output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ViterbiKernel {
    /// Best tier the build, CPU, code and LLRs allow (the default).
    #[default]
    Auto,
    /// The reference per-state `i64` kernel.
    Scalar,
    /// The scalar radix-2 butterfly kernel.
    Butterfly,
    /// The 8-lane SIMD butterfly tier.
    Simd,
}

/// Kernel request for [`ViterbiDecoder::decode_terminated_batch_with`].
///
/// `Auto` is cost-aware, not capability-aware: the bitsliced kernel's
/// add-compare-select runs per *lane* (the group rounded up to a
/// multiple of 8), so a sparsely occupied group pays for planes that
/// carry no block, while the per-block loop's cost is exactly linear
/// in the group. Measured on the paper's K=7 rate-1/2 code, the
/// per-block 8-lane SIMD tier outruns the bitsliced kernel even at
/// full 64-lane occupancy, and the scalar butterfly tier loses to it
/// from about half occupancy up — so `Auto` goes bitsliced only on
/// builds without the SIMD tier and only for groups of at least half
/// the lane width. An explicit `Bitsliced` request skips the cost
/// model (that is what the differential suites and kernel benches
/// use) but still falls back per block when the group's shape
/// disqualifies the bitsliced kernel — like [`ViterbiKernel`],
/// request choice can affect only speed, never output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchKernel {
    /// Cheapest plan for the group's occupancy on this build (default).
    #[default]
    Auto,
    /// The bitsliced many-block kernel wherever the group fits it.
    Bitsliced,
    /// A per-block [`ViterbiKernel::Auto`] loop.
    PerBlock,
}

/// Phase timing of one decode, from
/// [`ViterbiDecoder::decode_terminated_profiled`]: where a block's time
/// went and which kernel tier actually ran.
#[derive(Debug, Clone, Copy)]
pub struct DecodeProfile {
    /// Forward pass: branch metrics + add-compare-select recursion.
    pub acs: Duration,
    /// Backward pass: survivor traceback (and output assembly).
    pub traceback: Duration,
    /// The kernel tier dispatched: `"scalar"`, `"butterfly"`,
    /// `"simd-portable"` or `"simd-avx2"`.
    pub kernel: &'static str,
}

/// One step-kernel binding: the butterfly tables plus (optionally) the
/// SIMD lane tier layered on top. Every `i32` decode path runs through
/// [`StepKernel::acs_step`], so tier choice is a single seam.
#[derive(Clone, Copy)]
struct StepKernel<'a> {
    bf: &'a ButterflyTrellis,
    simd: Option<&'a SimdTrellis>,
}

impl StepKernel<'_> {
    #[inline]
    fn acs_step(&self, bm: &[i32], cur: &[i32], nxt: &mut [i32], surv: &mut [u64]) {
        match self.simd {
            Some(s) => s.acs_step(bm, cur, nxt, surv),
            None => self.bf.acs_step(bm, cur, nxt, surv),
        }
    }

    fn name(&self) -> &'static str {
        match self.simd {
            Some(s) => s.name(),
            None => "butterfly",
        }
    }
}

impl ViterbiDecoder {
    /// Builds the decoder trellis for a code.
    pub fn new(spec: CodeSpec) -> Self {
        let n_states = spec.num_states();
        let transitions = (0..n_states as u32)
            .map(|s| [spec.step(s, 0), spec.step(s, 1)])
            .collect();
        let butterfly = ButterflyTrellis::new(&spec);
        let simd = butterfly.as_ref().and_then(SimdTrellis::new);
        Self {
            spec,
            transitions,
            butterfly,
            simd,
        }
    }

    /// The code this decoder targets.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// The butterfly trellis whose `i32` arithmetic is exact for
    /// `soft`, ignoring the feature flags — the shared eligibility
    /// check under every explicit kernel request.
    #[inline]
    fn butterfly_safe(&self, soft: &[Llr]) -> Option<&ButterflyTrellis> {
        self.butterfly.as_ref().filter(|bf| bf.safe_for(soft))
    }

    /// The butterfly trellis to use for `soft`, or `None` when the
    /// scalar fallback must run (forced by the `scalar-kernel` feature,
    /// a code with too many generators, or LLR magnitudes beyond the
    /// `i32` kernel's exactness bound).
    #[inline]
    fn butterfly_for(&self, soft: &[Llr]) -> Option<&ButterflyTrellis> {
        if cfg!(feature = "scalar-kernel") {
            return None;
        }
        self.butterfly_safe(soft)
    }

    /// The [`ViterbiKernel::Auto`] step kernel for `soft`: butterfly
    /// tables when eligible, with the SIMD lane tier on top when the
    /// `simd` feature is enabled and the code fits the lanes. `None`
    /// means the scalar fallback must run.
    #[inline]
    fn step_kernel_for(&self, soft: &[Llr]) -> Option<StepKernel<'_>> {
        let bf = self.butterfly_for(soft)?;
        let simd = if cfg!(feature = "simd") {
            self.simd.as_ref()
        } else {
            None
        };
        Some(StepKernel { bf, simd })
    }

    /// Resolves an explicit kernel request for `soft` (see
    /// [`ViterbiKernel`]): `None` means scalar.
    #[inline]
    fn step_kernel_with(&self, kernel: ViterbiKernel, soft: &[Llr]) -> Option<StepKernel<'_>> {
        match kernel {
            ViterbiKernel::Auto => self.step_kernel_for(soft),
            ViterbiKernel::Scalar => None,
            ViterbiKernel::Butterfly => {
                self.butterfly_safe(soft).map(|bf| StepKernel { bf, simd: None })
            }
            ViterbiKernel::Simd => self.butterfly_safe(soft).map(|bf| StepKernel {
                bf,
                simd: self.simd.as_ref(),
            }),
        }
    }

    /// Name of the kernel tier [`ViterbiKernel::Auto`] would dispatch
    /// for `soft` on this build and CPU: `"scalar"`, `"butterfly"`,
    /// `"simd-portable"` or `"simd-avx2"`. Benches record this so
    /// numbers from different hosts and feature sets are interpretable.
    pub fn kernel_name(&self, soft: &[Llr]) -> &'static str {
        match self.step_kernel_for(soft) {
            Some(k) => k.name(),
            None => "scalar",
        }
    }

    /// Decodes a zero-terminated block (encoded with
    /// [`ConvolutionalEncoder::encode_terminated`](crate::ConvolutionalEncoder::encode_terminated)),
    /// stripping the `K-1` flush bits from the result.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches or is shorter than the flush tail.
    pub fn decode_terminated(&self, soft: &[Llr]) -> Result<Vec<u8>, CodingError> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_terminated_into(soft, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`ViterbiDecoder::decode_terminated`]: decodes
    /// into `out` (cleared first) using the caller's workspace. The
    /// steady-state hot path allocates nothing once the workspace and
    /// `out` have grown to the burst's block size.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated`].
    pub fn decode_terminated_into(
        &self,
        soft: &[Llr],
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        self.decode_block_into(soft, true, ws, out)?;
        self.strip_flush(soft.len(), out)
    }

    /// [`ViterbiDecoder::decode_terminated_into`] on the reference
    /// scalar kernel, regardless of the default backend — the
    /// differential-testing twin of the butterfly path.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated`].
    pub fn decode_terminated_scalar_into(
        &self,
        soft: &[Llr],
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        self.decode_block_scalar_into(soft, true, ws, out)?;
        self.strip_flush(soft.len(), out)
    }

    /// [`ViterbiDecoder::decode_terminated_into`] on an explicitly
    /// requested kernel tier (see [`ViterbiKernel`] for how requests
    /// degrade when the code or LLRs disqualify a tier) — the entry
    /// point the differential property suite sweeps.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated`].
    pub fn decode_terminated_with(
        &self,
        kernel: ViterbiKernel,
        soft: &[Llr],
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        match self.step_kernel_with(kernel, soft) {
            Some(k) => {
                let n_branches = self.validate_block(soft)?;
                self.butterfly_acs_pass(k, soft, ws);
                Self::butterfly_traceback(k.bf, n_branches, true, ws, out);
            }
            None => self.decode_block_scalar_into(soft, true, ws, out)?,
        }
        self.strip_flush(soft.len(), out)
    }

    /// [`ViterbiDecoder::decode_terminated_into`] with per-phase
    /// timing: how long the forward (branch-metric + ACS) and backward
    /// (traceback) passes took, and which kernel tier ran. The decode
    /// itself is the ordinary [`ViterbiKernel::Auto`] dispatch.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated`].
    pub fn decode_terminated_profiled(
        &self,
        soft: &[Llr],
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<DecodeProfile, CodingError> {
        let n_branches = self.validate_block(soft)?;
        match self.step_kernel_for(soft) {
            Some(k) => {
                let t0 = Instant::now();
                self.butterfly_acs_pass(k, soft, ws);
                let acs = t0.elapsed();
                let t1 = Instant::now();
                Self::butterfly_traceback(k.bf, n_branches, true, ws, out);
                self.strip_flush(soft.len(), out)?;
                Ok(DecodeProfile {
                    acs,
                    traceback: t1.elapsed(),
                    kernel: k.name(),
                })
            }
            None => {
                let t0 = Instant::now();
                self.scalar_acs_pass(soft, ws);
                let acs = t0.elapsed();
                let t1 = Instant::now();
                self.scalar_traceback(n_branches, true, ws, out);
                self.strip_flush(soft.len(), out)?;
                Ok(DecodeProfile {
                    acs,
                    traceback: t1.elapsed(),
                    kernel: "scalar",
                })
            }
        }
    }

    /// Decodes a batch of independent zero-terminated blocks of this
    /// code, leaving one output per block (input order) in
    /// [`BatchViterbiWorkspace::outputs`].
    ///
    /// Groups of up to 64 equal-length blocks may run on the bitsliced
    /// kernel (the private `bitslice` module) — one survivor bit-plane
    /// per block,
    /// the whole group through the ACS recursion at once — when the
    /// [`BatchKernel::Auto`] cost model says the occupancy pays for it;
    /// everything else (sparse groups, SIMD-tier builds, ragged
    /// lengths, scalar-only codes, out-of-bound LLRs, `scalar-kernel`
    /// builds) runs a per-block
    /// [`ViterbiDecoder::decode_terminated_into`] loop. Either way the
    /// batch entry point accepts exactly what the per-block one does
    /// and every output is bit-identical to decoding that block alone.
    ///
    /// # Errors
    ///
    /// [`CodingError::BadBlockLength`] under the same conditions as
    /// [`ViterbiDecoder::decode_terminated`], reported for the first
    /// offending block; outputs of other blocks are unspecified after
    /// an error.
    pub fn decode_terminated_batch(
        &self,
        blocks: &[&[Llr]],
        ws: &mut BatchViterbiWorkspace,
    ) -> Result<(), CodingError> {
        self.decode_terminated_batch_with(BatchKernel::Auto, blocks, ws)
    }

    /// [`ViterbiDecoder::decode_terminated_batch`] with an explicit
    /// batch-kernel request (see [`BatchKernel`]); `Bitsliced` pins the
    /// bitsliced tier for differential runs regardless of occupancy or
    /// cargo features.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated_batch`].
    pub fn decode_terminated_batch_with(
        &self,
        kernel: BatchKernel,
        blocks: &[&[Llr]],
        ws: &mut BatchViterbiWorkspace,
    ) -> Result<(), CodingError> {
        ws.reserve_outputs(blocks.len());
        let mut base = 0usize;
        for group in blocks.chunks(MAX_LANES) {
            match self.batch_butterfly_with(kernel, group) {
                Some(bf) => bitslice::decode_group(&self.spec, bf, group, ws, base),
                None => {
                    let BatchViterbiWorkspace { outs, scratch, .. } = ws;
                    for (i, block) in group.iter().enumerate() {
                        self.decode_terminated_into(block, scratch, &mut outs[base + i])?;
                    }
                }
            }
            base += group.len();
        }
        Ok(())
    }

    /// Allocating convenience for
    /// [`ViterbiDecoder::decode_terminated_batch`]: decodes `blocks`
    /// and returns one output per block.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated_batch`].
    pub fn decode_batch(&self, blocks: &[&[Llr]]) -> Result<Vec<Vec<u8>>, CodingError> {
        let mut ws = BatchViterbiWorkspace::new();
        self.decode_terminated_batch(blocks, &mut ws)?;
        Ok(std::mem::take(&mut ws.outs))
    }

    /// Resolves a [`BatchKernel`] request for one group: `Some` means
    /// run the bitsliced kernel on these butterfly tables, `None` means
    /// the per-block loop.
    fn batch_butterfly_with(
        &self,
        kernel: BatchKernel,
        group: &[&[Llr]],
    ) -> Option<&ButterflyTrellis> {
        match kernel {
            BatchKernel::Auto => {
                if cfg!(feature = "scalar-kernel") || !self.bitslice_pays_for(group.len()) {
                    return None;
                }
                self.batch_group_trellis(group)
            }
            BatchKernel::Bitsliced => self.batch_group_trellis(group),
            BatchKernel::PerBlock => None,
        }
    }

    /// Whether one batch group *can* run bitsliced: a
    /// butterfly-eligible code, equal block lengths forming whole
    /// branch sequences longer than the flush tail, and every block
    /// inside the `i32` exactness bound. Anything else must fall back
    /// per block regardless of the request.
    fn batch_group_trellis(&self, group: &[&[Llr]]) -> Option<&ButterflyTrellis> {
        let bf = self.butterfly.as_ref()?;
        let first = group.first()?;
        let n_out = self.spec.outputs_per_input();
        if !first.len().is_multiple_of(n_out) {
            return None;
        }
        if first.len() / n_out < self.spec.constraint_length() {
            return None;
        }
        group
            .iter()
            .all(|b| b.len() == first.len() && bf.safe_for(b))
            .then_some(bf)
    }

    /// The [`BatchKernel::Auto`] cost model: whether a bitsliced group
    /// of `n` blocks beats `n` per-block decodes. The bitsliced
    /// recursion pays per lane (`n` rounded up to a multiple of 8)
    /// whether or not a lane carries a block, and even its full-
    /// occupancy aggregate rate sits below the per-block 8-lane SIMD
    /// tier (measured ~14 vs ~19 Mbit/s on the paper's code), so it
    /// pays only on builds whose per-block tier is the scalar
    /// butterfly — and there only from about half the lane width up.
    fn bitslice_pays_for(&self, n: usize) -> bool {
        let simd_up = cfg!(feature = "simd") && self.simd.is_some();
        !simd_up && n * 2 >= MAX_LANES
    }

    /// Removes the `K-1` trellis flush bits after a terminated decode.
    fn strip_flush(&self, soft_len: usize, out: &mut Vec<u8>) -> Result<(), CodingError> {
        let flush = self.spec.constraint_length() - 1;
        if out.len() < flush {
            return Err(CodingError::BadBlockLength {
                got: soft_len,
                multiple: self.spec.outputs_per_input() * (flush + 1),
            });
        }
        let info_len = out.len() - flush;
        out.truncate(info_len);
        Ok(())
    }

    /// Decodes a block without termination assumptions (traceback
    /// starts from the best metric over all end states).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches.
    pub fn decode_stream(&self, soft: &[Llr]) -> Result<Vec<u8>, CodingError> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_block_into(soft, false, &mut ws, &mut out)?;
        Ok(out)
    }

    /// [`ViterbiDecoder::decode_stream`] on the reference scalar
    /// kernel.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_stream`].
    pub fn decode_stream_scalar(&self, soft: &[Llr]) -> Result<Vec<u8>, CodingError> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_block_scalar_into(soft, false, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Decodes with a sliding traceback window of `window` branches —
    /// the architecture a hardware Viterbi core (the paper's "Viterbi
    /// decoder" entity with its 18,460 memory bits of survivor RAM)
    /// actually implements: decisions commit once they are `window`
    /// branches old, bounding survivor memory at `window × states`
    /// bits instead of the whole burst.
    ///
    /// With `window ≥ ~5K` (35 for K=7) the output is virtually always
    /// identical to full traceback.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches, or if `window` is zero.
    pub fn decode_windowed(&self, soft: &[Llr], window: usize) -> Result<Vec<u8>, CodingError> {
        self.decode_windowed_with(ViterbiKernel::Auto, soft, window)
    }

    /// [`ViterbiDecoder::decode_windowed`] on an explicitly requested
    /// kernel tier (see [`ViterbiKernel`]).
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_windowed`].
    pub fn decode_windowed_with(
        &self,
        kernel: ViterbiKernel,
        soft: &[Llr],
        window: usize,
    ) -> Result<Vec<u8>, CodingError> {
        self.check_windowed(soft, window)?;
        match self.step_kernel_with(kernel, soft) {
            Some(k) => Ok(self.windowed_butterfly(k, soft, window)),
            None => Ok(self.windowed_scalar(soft, window)),
        }
    }

    /// [`ViterbiDecoder::decode_windowed`] on the reference scalar
    /// kernel.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_windowed`].
    pub fn decode_windowed_scalar(
        &self,
        soft: &[Llr],
        window: usize,
    ) -> Result<Vec<u8>, CodingError> {
        self.check_windowed(soft, window)?;
        Ok(self.windowed_scalar(soft, window))
    }

    /// Shared validation for the windowed entry points.
    fn check_windowed(&self, soft: &[Llr], window: usize) -> Result<(), CodingError> {
        if window == 0 {
            return Err(CodingError::BadBlockLength {
                got: 0,
                multiple: 1,
            });
        }
        let n_out = self.spec.outputs_per_input();
        if !soft.len().is_multiple_of(n_out) {
            return Err(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: n_out,
            });
        }
        Ok(())
    }

    /// Windowed decode on the butterfly kernel: the survivor ring holds
    /// `window × ⌈states/64⌉` mask words — exactly the bounded survivor
    /// RAM of the hardware core — and each commit walks it by
    /// shift-and-mask.
    fn windowed_butterfly(&self, kernel: StepKernel<'_>, soft: &[Llr], window: usize) -> Vec<u8> {
        let bf = kernel.bf;
        let n_out = self.spec.outputs_per_input();
        let n_branches = soft.len() / n_out;
        let n_states = bf.n_states();
        let wps = bf.words_per_step();

        let mut cur = vec![NEG_INF_I32; n_states];
        cur[0] = 0;
        let mut nxt = vec![NEG_INF_I32; n_states];
        let mut bm = vec![0i32; bf.table_len()];
        let mut ring = vec![0u64; window * wps];
        let mut path = vec![0u8; window];
        let mut filled = 0usize;
        let mut decoded = Vec::with_capacity(n_branches);

        // A borrowed view of the survivor ring for one traceback walk:
        // back through the `filled` newest rows (newest row index
        // `newest`), emitting the oldest `emit` decisions.
        struct MaskRing<'a> {
            bf: &'a ButterflyTrellis,
            ring: &'a [u64],
            wps: usize,
            window: usize,
        }
        impl MaskRing<'_> {
            fn emit(
                &self,
                filled: usize,
                newest: usize,
                metrics: &[i32],
                emit: usize,
                path: &mut [u8],
                out: &mut Vec<u8>,
            ) {
                let mut state = best_state(metrics);
                for back in 0..filled {
                    let row = (newest + self.window - back) % self.window;
                    let words = &self.ring[row * self.wps..(row + 1) * self.wps];
                    let (bit, prev) = self.bf.traceback_state(state, words);
                    path[filled - 1 - back] = bit;
                    state = prev;
                }
                out.extend(&path[..emit.min(filled)]);
            }
        }

        for t in 0..n_branches {
            fill_bm_table(&soft[t * n_out..(t + 1) * n_out], &mut bm);
            let row = t % window;
            kernel.acs_step(&bm, &cur, &mut nxt, &mut ring[row * wps..(row + 1) * wps]);
            std::mem::swap(&mut cur, &mut nxt);
            if (t + 1) % NORM_INTERVAL == 0 {
                normalize_row(&mut cur);
            }
            filled += 1;
            if filled == window {
                // Commit the oldest decision and free its ring row.
                let view = MaskRing { bf, ring: &ring, wps, window };
                view.emit(filled, row, &cur, 1, &mut path, &mut decoded);
                filled -= 1;
            }
        }
        // Flush: final traceback from the best end state.
        if filled > 0 {
            let newest = (n_branches + window - 1) % window;
            let view = MaskRing { bf, ring: &ring, wps, window };
            view.emit(filled, newest, &cur, filled, &mut path, &mut decoded);
        }
        decoded
    }

    /// Windowed decode on the scalar kernel (the original
    /// implementation, kept as the differential reference).
    fn windowed_scalar(&self, soft: &[Llr], window: usize) -> Vec<u8> {
        let n_out = self.spec.outputs_per_input();
        let n_branches = soft.len() / n_out;
        let n_states = self.spec.num_states();

        let mut metrics = vec![NEG_INF; n_states];
        metrics[0] = 0;
        let mut next_metrics = vec![NEG_INF; n_states];
        // Flat survivor ring, `window × states` entries (row `t %
        // window` holds branch `t`'s decisions).
        let mut ring = vec![0u32; window * n_states];
        let mut filled = 0usize;
        let mut decoded = Vec::with_capacity(n_branches);

        let traceback_emit = |ring: &[u32],
                              filled: usize,
                              newest: usize,
                              metrics: &[i64],
                              emit: usize,
                              out: &mut Vec<u8>| {
            let mut state = metrics
                .iter()
                .enumerate()
                .max_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0);
            let mut path = vec![0u8; filled];
            for back in 0..filled {
                let row = (newest + window - back) % window;
                let (prev, input) = unpack_survivor(ring[row * n_states + state]);
                path[filled - 1 - back] = input;
                state = prev;
            }
            out.extend(&path[..emit.min(path.len())]);
        };

        for t in 0..n_branches {
            let branch = &soft[t * n_out..(t + 1) * n_out];
            next_metrics.fill(NEG_INF);
            let row = t % window;
            let surv = &mut ring[row * n_states..(row + 1) * n_states];
            surv.fill(0);
            #[allow(clippy::needless_range_loop)] // `state` indexes two tables in lockstep
            for state in 0..n_states {
                let pm = metrics[state];
                if pm == NEG_INF {
                    continue;
                }
                for input in 0..2u8 {
                    let (coded, next) = self.transitions[state][input as usize];
                    let mut bm: i64 = 0;
                    for (i, &llr) in branch.iter().enumerate() {
                        let expected = (coded >> i) & 1;
                        bm += if expected == 0 { llr as i64 } else { -(llr as i64) };
                    }
                    let cand = pm + bm;
                    let next = next as usize;
                    if cand > next_metrics[next] {
                        next_metrics[next] = cand;
                        surv[next] = pack_survivor(state, input);
                    }
                }
            }
            std::mem::swap(&mut metrics, &mut next_metrics);
            filled += 1;
            if filled == window {
                traceback_emit(&ring, filled, row, &metrics, 1, &mut decoded);
                filled -= 1;
            }
        }
        if filled > 0 {
            let newest = (n_branches + window - 1) % window;
            traceback_emit(&ring, filled, newest, &metrics, filled, &mut decoded);
        }
        decoded
    }

    /// Full-block decode into caller-owned storage: validates, then
    /// dispatches to the fastest eligible `i32` kernel tier or the
    /// scalar fallback.
    fn decode_block_into(
        &self,
        soft: &[Llr],
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        match self.step_kernel_for(soft) {
            Some(k) => {
                let n_branches = self.validate_block(soft)?;
                self.butterfly_acs_pass(k, soft, ws);
                Self::butterfly_traceback(k.bf, n_branches, terminated, ws, out);
                Ok(())
            }
            None => self.decode_block_scalar_into(soft, terminated, ws, out),
        }
    }

    /// Checks that `soft` is a whole number of branches; returns the
    /// branch count.
    fn validate_block(&self, soft: &[Llr]) -> Result<usize, CodingError> {
        let n_out = self.spec.outputs_per_input();
        if !soft.len().is_multiple_of(n_out) {
            return Err(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: n_out,
            });
        }
        Ok(soft.len() / n_out)
    }

    /// Forward pass of a butterfly-tier block decode: branch metrics +
    /// add-compare-select into the workspace's survivor masks. `soft`
    /// must already be validated.
    fn butterfly_acs_pass(&self, kernel: StepKernel<'_>, soft: &[Llr], ws: &mut ViterbiWorkspace) {
        let n_out = self.spec.outputs_per_input();
        let n_branches = soft.len() / n_out;
        let wps = kernel.bf.words_per_step();

        ws.prepare_butterfly(n_branches, kernel.bf);
        ws.row_cur[0] = 0;

        for t in 0..n_branches {
            fill_bm_table(&soft[t * n_out..(t + 1) * n_out], &mut ws.bm);
            kernel.acs_step(
                &ws.bm,
                &ws.row_cur,
                &mut ws.row_next,
                &mut ws.masks[t * wps..(t + 1) * wps],
            );
            std::mem::swap(&mut ws.row_cur, &mut ws.row_next);
            if (t + 1) % NORM_INTERVAL == 0 {
                normalize_row(&mut ws.row_cur);
            }
        }
    }

    /// Backward pass of a butterfly-tier block decode: one survivor bit
    /// per step selects the predecessor.
    fn butterfly_traceback(
        bf: &ButterflyTrellis,
        n_branches: usize,
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) {
        let wps = bf.words_per_step();
        let mut state = if terminated {
            0usize
        } else {
            best_state(&ws.row_cur)
        };
        out.clear();
        out.resize(n_branches, 0);
        for t in (0..n_branches).rev() {
            let (bit, prev) = bf.traceback_state(state, &ws.masks[t * wps..(t + 1) * wps]);
            out[t] = bit;
            state = prev;
        }
    }

    /// Scalar-kernel add-compare-select + traceback over the full
    /// block, into caller-owned storage.
    fn decode_block_scalar_into(
        &self,
        soft: &[Llr],
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        let n_branches = self.validate_block(soft)?;
        self.scalar_acs_pass(soft, ws);
        self.scalar_traceback(n_branches, terminated, ws, out);
        Ok(())
    }

    /// Forward pass of a scalar-kernel block decode. `soft` must
    /// already be validated.
    fn scalar_acs_pass(&self, soft: &[Llr], ws: &mut ViterbiWorkspace) {
        let n_out = self.spec.outputs_per_input();
        let n_branches = soft.len() / n_out;
        let n_states = self.spec.num_states();

        // Path metrics: larger is better. Start locked to state 0.
        ws.prepare_scalar(n_branches, n_states);
        ws.metrics[0] = 0;

        for t in 0..n_branches {
            let branch = &soft[t * n_out..(t + 1) * n_out];
            ws.next_metrics.fill(NEG_INF);
            let surv = &mut ws.survivors[t * n_states..(t + 1) * n_states];
            for state in 0..n_states {
                let pm = ws.metrics[state];
                if pm == NEG_INF {
                    continue;
                }
                for input in 0..2u8 {
                    let (coded, next) = self.transitions[state][input as usize];
                    // Branch metric: correlation of expected bits with
                    // LLRs (positive LLR favours bit 0).
                    let mut bm: i64 = 0;
                    for (i, &llr) in branch.iter().enumerate() {
                        let expected = (coded >> i) & 1;
                        bm += if expected == 0 { llr as i64 } else { -(llr as i64) };
                    }
                    let cand = pm + bm;
                    let next = next as usize;
                    if cand > ws.next_metrics[next] {
                        ws.next_metrics[next] = cand;
                        surv[next] = pack_survivor(state, input);
                    }
                }
            }
            std::mem::swap(&mut ws.metrics, &mut ws.next_metrics);
        }
    }

    /// Backward pass of a scalar-kernel block decode.
    fn scalar_traceback(
        &self,
        n_branches: usize,
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) {
        let n_states = self.spec.num_states();
        let mut state = if terminated {
            0usize
        } else {
            ws.metrics
                .iter()
                .enumerate()
                .max_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0)
        };
        out.clear();
        out.resize(n_branches, 0);
        for t in (0..n_branches).rev() {
            let (prev, input) = unpack_survivor(ws.survivors[t * n_states + state]);
            out[t] = input;
            state = prev;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hard_to_llr, ConvolutionalEncoder, HARD_LLR};

    fn roundtrip(info: &[u8]) -> Vec<u8> {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let coded = enc.encode_terminated(info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        dec.decode_terminated(&soft).unwrap()
    }

    #[test]
    fn noiseless_roundtrip() {
        let info: Vec<u8> = (0..100).map(|i| ((i * 31 + 7) % 5 < 2) as u8).collect();
        assert_eq!(roundtrip(&info), info);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..200).map(|i| ((i * 13) % 7 < 3) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        // Flip well-separated bits: free distance 10 corrects these.
        for pos in [3usize, 40, 90, 150, 220, 300, 390] {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    #[test]
    fn soft_information_beats_hard_on_weak_bits() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..64).map(|i| ((i * 29) % 3 == 0) as u8).collect();
        let coded = enc.encode_terminated(&info);
        // A burst of 6 adjacent hard flips defeats hard decisions...
        let mut hard: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let mut soft = hard.clone();
        for pos in 20..26 {
            hard[pos] = -hard[pos];
            // ...but soft decoding sees those bits as unreliable.
            soft[pos] = -soft[pos].signum() * (HARD_LLR / 16).max(1);
        }
        let soft_result = dec.decode_terminated(&soft).unwrap();
        assert_eq!(soft_result, info, "soft decoder must survive a weak burst");
    }

    #[test]
    fn erasures_are_tolerated() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..80).map(|i| (i % 3 == 1) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        // Erase every 4th bit (heavier than r=3/4 puncturing).
        for llr in soft.iter_mut().step_by(4) {
            *llr = 0;
        }
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    #[test]
    fn stream_decode_without_termination() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        let coded = enc.encode(&info);
        enc.reset();
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let decoded = dec.decode_stream(&soft).unwrap();
        // Tail bits may be wrong without termination; the body must match.
        assert_eq!(&decoded[..50], &info[..50]);
    }

    #[test]
    fn rejects_ragged_input() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(matches!(
            dec.decode_terminated(&[1, 2, 3]),
            Err(CodingError::BadBlockLength { got: 3, .. })
        ));
    }

    #[test]
    fn empty_block_is_rejected() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(dec.decode_terminated(&[]).is_err());
    }

    #[test]
    fn windowed_matches_full_traceback_noiseless() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..300).map(|i| ((i * 23 + 1) % 7 < 3) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let full = dec.decode_terminated(&soft).unwrap();
        // Window of 5K = 35 branches: the classic rule of thumb.
        let windowed = dec.decode_windowed(&soft, 35).unwrap();
        // Windowed output includes the flush tail; compare the body.
        assert_eq!(&windowed[..full.len()], &full[..]);
    }

    #[test]
    fn windowed_corrects_errors_like_full() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..200).map(|i| (i % 3 == 1) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        for pos in [10usize, 60, 130, 250, 330] {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let windowed = dec.decode_windowed(&soft, 48).unwrap();
        assert_eq!(&windowed[..info.len()], &info[..]);
    }

    #[test]
    fn too_small_window_degrades_gracefully() {
        // A window below ~3K truncates paths too early: errors appear
        // but decoding must not panic. This documents *why* hardware
        // pays for 5K-deep survivor memory.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..120).map(|i| ((i * 31) % 5 < 2) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        for pos in (7..coded.len()).step_by(37) {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let tight = dec.decode_windowed(&soft, 8).unwrap();
        let roomy = dec.decode_windowed(&soft, 64).unwrap();
        let errs = |out: &[u8]| info.iter().zip(out).filter(|(a, b)| a != b).count();
        assert!(
            errs(&roomy) <= errs(&tight),
            "wider window must not be worse: {} vs {}",
            errs(&roomy),
            errs(&tight)
        );
        assert_eq!(errs(&roomy), 0, "64-deep window must fully correct");
    }

    #[test]
    fn windowed_rejects_zero_window() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(dec.decode_windowed(&[1, 2], 0).is_err());
    }

    #[test]
    fn works_for_other_codes() {
        // K=3 (5,7) toy code.
        let spec = CodeSpec::new(3, vec![0o5, 0o7], 1).unwrap();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info = vec![1, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        let coded = enc.encode_terminated(&info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    #[test]
    fn butterfly_matches_scalar_on_noisy_block() {
        // Direct differential check on one heavily corrupted block
        // (the crate's property suite sweeps this much harder).
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..500).map(|i| ((i * 37 + 11) % 9 < 4) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        // Deterministic pseudo-noise, including sign flips and erasures.
        let mut s = 0x9e3779b9u32;
        for llr in soft.iter_mut() {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *llr += (s % 101) as Llr - 50;
        }
        let mut ws = ViterbiWorkspace::new();
        let mut fast = Vec::new();
        let mut reference = Vec::new();
        dec.decode_terminated_into(&soft, &mut ws, &mut fast).unwrap();
        dec.decode_terminated_scalar_into(&soft, &mut ws, &mut reference)
            .unwrap();
        assert_eq!(fast, reference, "kernels disagree");
    }

    #[test]
    fn extreme_llrs_fall_back_to_scalar_and_still_match() {
        // Magnitudes beyond the i32 kernel's exactness bound must route
        // to the scalar kernel transparently.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..40).map(|i| (i % 5 == 2) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let soft: Vec<Llr> = coded
            .iter()
            .map(|&b| if b == 0 { 1 << 28 } else { -(1 << 28) })
            .collect();
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }
}
