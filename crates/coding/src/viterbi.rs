//! Soft-decision Viterbi decoder with full-block traceback.
//!
//! "Error correction is performed using the Viterbi decoder" (§IV.B).
//! The symbol demapper "can be set up to perform hard or soft symbol
//! demapping", so the decoder accepts LLRs; hard decisions are just
//! ±[`HARD_LLR`](crate::HARD_LLR).

use crate::{CodeSpec, CodingError, Llr};

/// Preallocated working state for [`ViterbiDecoder`] — path metrics
/// and a flat `branches × states` survivor matrix. One workspace per
/// decoding thread lets the burst hot path decode with zero steady-state
/// heap allocation: buffers grow to the largest block seen and are
/// reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct ViterbiWorkspace {
    /// Path metrics for the current branch (one per state).
    metrics: Vec<i64>,
    /// Path metrics being built for the next branch.
    next_metrics: Vec<i64>,
    /// Flat survivor memory: `survivors[t * n_states + s]` packs the
    /// predecessor state (upper bits) and the input bit (bit 0) of the
    /// best path into state `s` at branch `t` — the software analogue
    /// of the hardware survivor RAM.
    survivors: Vec<u32>,
}

impl ViterbiWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures capacity for `n_branches` branches of `n_states` states.
    fn prepare(&mut self, n_branches: usize, n_states: usize) {
        self.metrics.clear();
        self.metrics.resize(n_states, NEG_INF);
        self.next_metrics.clear();
        self.next_metrics.resize(n_states, NEG_INF);
        self.survivors.clear();
        self.survivors.resize(n_branches * n_states, 0);
    }
}

/// Sentinel for an unreachable trellis state.
const NEG_INF: i64 = i64::MIN / 4;

/// Packs a survivor entry: predecessor state and decided input bit.
#[inline]
fn pack_survivor(prev_state: usize, input: u8) -> u32 {
    ((prev_state as u32) << 1) | u32::from(input)
}

/// Unpacks a survivor entry into `(prev_state, input)`.
#[inline]
fn unpack_survivor(packed: u32) -> (usize, u8) {
    ((packed >> 1) as usize, (packed & 1) as u8)
}

/// A soft-decision Viterbi decoder over the trellis of a [`CodeSpec`].
///
/// The decoder performs add-compare-select over all `2^(K-1)` states
/// per branch and keeps the full survivor memory for an exact
/// end-of-block traceback (the hardware equivalent uses a sliding
/// traceback window; for the paper's burst sizes a full traceback is
/// the exact limit of that architecture).
///
/// # Examples
///
/// ```
/// use mimo_coding::{CodeSpec, ConvolutionalEncoder, ViterbiDecoder, hard_to_llr};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = CodeSpec::ieee80211a();
/// let mut enc = ConvolutionalEncoder::new(spec.clone());
/// let dec = ViterbiDecoder::new(spec);
///
/// let info = vec![1, 0, 0, 1, 1, 0, 1, 0];
/// let coded = enc.encode_terminated(&info);
/// let soft: Vec<_> = coded.iter().map(|&b| hard_to_llr(b)).collect();
/// let decoded = dec.decode_terminated(&soft)?;
/// assert_eq!(decoded, info);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ViterbiDecoder {
    spec: CodeSpec,
    /// For each state and input bit: (coded output, next state).
    transitions: Vec<[(u32, u32); 2]>,
}

impl ViterbiDecoder {
    /// Builds the decoder trellis for a code.
    pub fn new(spec: CodeSpec) -> Self {
        let n_states = spec.num_states();
        let transitions = (0..n_states as u32)
            .map(|s| [spec.step(s, 0), spec.step(s, 1)])
            .collect();
        Self { spec, transitions }
    }

    /// The code this decoder targets.
    pub fn spec(&self) -> &CodeSpec {
        &self.spec
    }

    /// Decodes a zero-terminated block (encoded with
    /// [`ConvolutionalEncoder::encode_terminated`](crate::ConvolutionalEncoder::encode_terminated)),
    /// stripping the `K-1` flush bits from the result.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches or is shorter than the flush tail.
    pub fn decode_terminated(&self, soft: &[Llr]) -> Result<Vec<u8>, CodingError> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_terminated_into(soft, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`ViterbiDecoder::decode_terminated`]: decodes
    /// into `out` (cleared first) using the caller's workspace. The
    /// steady-state hot path allocates nothing once the workspace and
    /// `out` have grown to the burst's block size.
    ///
    /// # Errors
    ///
    /// Identical to [`ViterbiDecoder::decode_terminated`].
    pub fn decode_terminated_into(
        &self,
        soft: &[Llr],
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        let flush = self.spec.constraint_length() - 1;
        self.decode_block_into(soft, true, ws, out)?;
        if out.len() < flush {
            return Err(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: self.spec.outputs_per_input() * (flush + 1),
            });
        }
        let info_len = out.len() - flush;
        out.truncate(info_len);
        Ok(())
    }

    /// Decodes a block without termination assumptions (traceback
    /// starts from the best metric over all end states).
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches.
    pub fn decode_stream(&self, soft: &[Llr]) -> Result<Vec<u8>, CodingError> {
        let mut ws = ViterbiWorkspace::new();
        let mut out = Vec::new();
        self.decode_block_into(soft, false, &mut ws, &mut out)?;
        Ok(out)
    }

    /// Decodes with a sliding traceback window of `window` branches —
    /// the architecture a hardware Viterbi core (the paper's "Viterbi
    /// decoder" entity with its 18,460 memory bits of survivor RAM)
    /// actually implements: decisions commit once they are `window`
    /// branches old, bounding survivor memory at `window × states`
    /// bits instead of the whole burst.
    ///
    /// With `window ≥ ~5K` (35 for K=7) the output is virtually always
    /// identical to full traceback.
    ///
    /// # Errors
    ///
    /// Returns [`CodingError::BadBlockLength`] if the input is not a
    /// whole number of branches, or if `window` is zero.
    pub fn decode_windowed(&self, soft: &[Llr], window: usize) -> Result<Vec<u8>, CodingError> {
        if window == 0 {
            return Err(CodingError::BadBlockLength {
                got: 0,
                multiple: 1,
            });
        }
        let n_out = self.spec.outputs_per_input();
        if !soft.len().is_multiple_of(n_out) {
            return Err(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: n_out,
            });
        }
        let n_branches = soft.len() / n_out;
        let n_states = self.spec.num_states();

        let mut metrics = vec![NEG_INF; n_states];
        metrics[0] = 0;
        let mut next_metrics = vec![NEG_INF; n_states];
        // Flat survivor ring, `window × states` entries — exactly the
        // bounded survivor RAM of the hardware core (row `t % window`
        // holds branch `t`'s decisions).
        let mut ring = vec![0u32; window * n_states];
        let mut filled = 0usize; // rows of the ring currently valid
        let mut decoded = Vec::with_capacity(n_branches);

        // Walks back through the `filled` newest rows (newest row index
        // `newest`), emitting the oldest `emit` decisions.
        let traceback_emit = |ring: &[u32],
                              filled: usize,
                              newest: usize,
                              metrics: &[i64],
                              emit: usize,
                              out: &mut Vec<u8>| {
            let mut state = metrics
                .iter()
                .enumerate()
                .max_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0);
            let mut path = vec![0u8; filled];
            for back in 0..filled {
                let row = (newest + window - back) % window;
                let (prev, input) = unpack_survivor(ring[row * n_states + state]);
                path[filled - 1 - back] = input;
                state = prev;
            }
            out.extend(&path[..emit.min(path.len())]);
        };

        for t in 0..n_branches {
            let branch = &soft[t * n_out..(t + 1) * n_out];
            next_metrics.fill(NEG_INF);
            let row = t % window;
            let surv = &mut ring[row * n_states..(row + 1) * n_states];
            surv.fill(0);
            #[allow(clippy::needless_range_loop)] // `state` indexes two tables in lockstep
            for state in 0..n_states {
                let pm = metrics[state];
                if pm == NEG_INF {
                    continue;
                }
                for input in 0..2u8 {
                    let (coded, next) = self.transitions[state][input as usize];
                    let mut bm: i64 = 0;
                    for (i, &llr) in branch.iter().enumerate() {
                        let expected = (coded >> i) & 1;
                        bm += if expected == 0 { llr as i64 } else { -(llr as i64) };
                    }
                    let cand = pm + bm;
                    let next = next as usize;
                    if cand > next_metrics[next] {
                        next_metrics[next] = cand;
                        surv[next] = pack_survivor(state, input);
                    }
                }
            }
            std::mem::swap(&mut metrics, &mut next_metrics);
            filled += 1;
            if filled == window {
                // Commit the oldest decision and free its ring row.
                traceback_emit(&ring, filled, row, &metrics, 1, &mut decoded);
                filled -= 1;
            }
        }
        // Flush: final traceback from the best end state.
        if filled > 0 {
            let newest = (n_branches + window - 1) % window;
            traceback_emit(&ring, filled, newest, &metrics, filled, &mut decoded);
        }
        Ok(decoded)
    }

    /// Shared add-compare-select + traceback over the full block, into
    /// caller-owned storage.
    fn decode_block_into(
        &self,
        soft: &[Llr],
        terminated: bool,
        ws: &mut ViterbiWorkspace,
        out: &mut Vec<u8>,
    ) -> Result<(), CodingError> {
        let n_out = self.spec.outputs_per_input();
        if !soft.len().is_multiple_of(n_out) {
            return Err(CodingError::BadBlockLength {
                got: soft.len(),
                multiple: n_out,
            });
        }
        let n_branches = soft.len() / n_out;
        let n_states = self.spec.num_states();

        // Path metrics: larger is better. Start locked to state 0.
        ws.prepare(n_branches, n_states);
        ws.metrics[0] = 0;

        for t in 0..n_branches {
            let branch = &soft[t * n_out..(t + 1) * n_out];
            ws.next_metrics.fill(NEG_INF);
            let surv = &mut ws.survivors[t * n_states..(t + 1) * n_states];
            for state in 0..n_states {
                let pm = ws.metrics[state];
                if pm == NEG_INF {
                    continue;
                }
                for input in 0..2u8 {
                    let (coded, next) = self.transitions[state][input as usize];
                    // Branch metric: correlation of expected bits with
                    // LLRs (positive LLR favours bit 0).
                    let mut bm: i64 = 0;
                    for (i, &llr) in branch.iter().enumerate() {
                        let expected = (coded >> i) & 1;
                        bm += if expected == 0 { llr as i64 } else { -(llr as i64) };
                    }
                    let cand = pm + bm;
                    let next = next as usize;
                    if cand > ws.next_metrics[next] {
                        ws.next_metrics[next] = cand;
                        surv[next] = pack_survivor(state, input);
                    }
                }
            }
            std::mem::swap(&mut ws.metrics, &mut ws.next_metrics);
        }

        // Traceback.
        let mut state = if terminated {
            0usize
        } else {
            ws.metrics
                .iter()
                .enumerate()
                .max_by_key(|(_, &m)| m)
                .map(|(s, _)| s)
                .unwrap_or(0)
        };
        out.clear();
        out.resize(n_branches, 0);
        for t in (0..n_branches).rev() {
            let (prev, input) = unpack_survivor(ws.survivors[t * n_states + state]);
            out[t] = input;
            state = prev;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hard_to_llr, ConvolutionalEncoder, HARD_LLR};

    fn roundtrip(info: &[u8]) -> Vec<u8> {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let coded = enc.encode_terminated(info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        dec.decode_terminated(&soft).unwrap()
    }

    #[test]
    fn noiseless_roundtrip() {
        let info: Vec<u8> = (0..100).map(|i| ((i * 31 + 7) % 5 < 2) as u8).collect();
        assert_eq!(roundtrip(&info), info);
    }

    #[test]
    fn corrects_scattered_bit_errors() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..200).map(|i| ((i * 13) % 7 < 3) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        // Flip well-separated bits: free distance 10 corrects these.
        for pos in [3usize, 40, 90, 150, 220, 300, 390] {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    #[test]
    fn soft_information_beats_hard_on_weak_bits() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..64).map(|i| ((i * 29) % 3 == 0) as u8).collect();
        let coded = enc.encode_terminated(&info);
        // A burst of 6 adjacent hard flips defeats hard decisions...
        let mut hard: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let mut soft = hard.clone();
        for pos in 20..26 {
            hard[pos] = -hard[pos];
            // ...but soft decoding sees those bits as unreliable.
            soft[pos] = -soft[pos].signum() * (HARD_LLR / 16).max(1);
        }
        let soft_result = dec.decode_terminated(&soft).unwrap();
        assert_eq!(soft_result, info, "soft decoder must survive a weak burst");
    }

    #[test]
    fn erasures_are_tolerated() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..80).map(|i| (i % 3 == 1) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let mut soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        // Erase every 4th bit (heavier than r=3/4 puncturing).
        for llr in soft.iter_mut().step_by(4) {
            *llr = 0;
        }
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }

    #[test]
    fn stream_decode_without_termination() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..60).map(|i| (i % 2) as u8).collect();
        let coded = enc.encode(&info);
        enc.reset();
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let decoded = dec.decode_stream(&soft).unwrap();
        // Tail bits may be wrong without termination; the body must match.
        assert_eq!(&decoded[..50], &info[..50]);
    }

    #[test]
    fn rejects_ragged_input() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(matches!(
            dec.decode_terminated(&[1, 2, 3]),
            Err(CodingError::BadBlockLength { got: 3, .. })
        ));
    }

    #[test]
    fn empty_block_is_rejected() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(dec.decode_terminated(&[]).is_err());
    }

    #[test]
    fn windowed_matches_full_traceback_noiseless() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..300).map(|i| ((i * 23 + 1) % 7 < 3) as u8).collect();
        let coded = enc.encode_terminated(&info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let full = dec.decode_terminated(&soft).unwrap();
        // Window of 5K = 35 branches: the classic rule of thumb.
        let windowed = dec.decode_windowed(&soft, 35).unwrap();
        // Windowed output includes the flush tail; compare the body.
        assert_eq!(&windowed[..full.len()], &full[..]);
    }

    #[test]
    fn windowed_corrects_errors_like_full() {
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..200).map(|i| (i % 3 == 1) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        for pos in [10usize, 60, 130, 250, 330] {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let windowed = dec.decode_windowed(&soft, 48).unwrap();
        assert_eq!(&windowed[..info.len()], &info[..]);
    }

    #[test]
    fn too_small_window_degrades_gracefully() {
        // A window below ~3K truncates paths too early: errors appear
        // but decoding must not panic. This documents *why* hardware
        // pays for 5K-deep survivor memory.
        let spec = CodeSpec::ieee80211a();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info: Vec<u8> = (0..120).map(|i| ((i * 31) % 5 < 2) as u8).collect();
        let mut coded = enc.encode_terminated(&info);
        for pos in (7..coded.len()).step_by(37) {
            coded[pos] ^= 1;
        }
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        let tight = dec.decode_windowed(&soft, 8).unwrap();
        let roomy = dec.decode_windowed(&soft, 64).unwrap();
        let errs = |out: &[u8]| info.iter().zip(out).filter(|(a, b)| a != b).count();
        assert!(
            errs(&roomy) <= errs(&tight),
            "wider window must not be worse: {} vs {}",
            errs(&roomy),
            errs(&tight)
        );
        assert_eq!(errs(&roomy), 0, "64-deep window must fully correct");
    }

    #[test]
    fn windowed_rejects_zero_window() {
        let dec = ViterbiDecoder::new(CodeSpec::ieee80211a());
        assert!(dec.decode_windowed(&[1, 2], 0).is_err());
    }

    #[test]
    fn works_for_other_codes() {
        // K=3 (5,7) toy code.
        let spec = CodeSpec::new(3, vec![0o5, 0o7], 1).unwrap();
        let mut enc = ConvolutionalEncoder::new(spec.clone());
        let dec = ViterbiDecoder::new(spec);
        let info = vec![1, 1, 0, 1, 0, 0, 1, 0, 1, 1];
        let coded = enc.encode_terminated(&info);
        let soft: Vec<Llr> = coded.iter().map(|&b| hard_to_llr(b)).collect();
        assert_eq!(dec.decode_terminated(&soft).unwrap(), info);
    }
}
