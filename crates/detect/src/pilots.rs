//! Pilot processing: common phase correction and feed-forward timing.
//!
//! "The pilot tones are extracted and de-scrambled. The average value
//! of the pilot tones is calculated and phase correction is performed
//! on the entire OFDM symbol by multiplying each subcarrier by the
//! pilot tone average. ... Each pilot tone is divided by its subcarrier
//! number and then the average is calculated to determine the
//! feed-forward time synchronization value, Tau. ... a running adder is
//! used [so that] as the time correction is performed on each
//! incrementing subcarrier, the Tau value is also incremented using a
//! feedback adder." (§IV.B)

use mimo_cordic::Cordic;
use mimo_fixed::{CFx, CQ15, Cf64, Q16, SAMPLE_BITS};

/// Common (symbol-wide) phase correction from the de-scrambled pilot
/// average.
#[derive(Debug, Clone)]
pub struct PilotPhaseCorrector {
    cordic: Cordic,
}

impl Default for PilotPhaseCorrector {
    fn default() -> Self {
        Self::new()
    }
}

impl PilotPhaseCorrector {
    /// Creates the corrector (one CORDIC for the angle extraction, one
    /// rotation per subcarrier).
    pub fn new() -> Self {
        Self {
            cordic: Cordic::new(),
        }
    }

    /// Estimates the common phase from the pilots: each received pilot
    /// is de-scrambled (multiplied by its expected ±1 sign) and the
    /// complex average is vectored to an angle.
    ///
    /// Returns the angle in radians (Q2.16). Zero pilots yield zero.
    pub fn estimate_phase(&self, pilots: &[CQ15], expected_signs: &[i8]) -> Q16 {
        debug_assert_eq!(pilots.len(), expected_signs.len());
        let mut acc = CFx::<15>::ZERO;
        for (&p, &sign) in pilots.iter().zip(expected_signs) {
            acc += if sign >= 0 { p } else { -p };
        }
        if acc.is_zero() {
            return Q16::ZERO;
        }
        let wide: CFx<16> = acc.convert();
        self.cordic.vector(wide.re, wide.im).angle
    }

    /// Rotates every carrier of a symbol by `-phase` (the correction).
    pub fn correct(&self, carriers: &[CQ15], phase: Q16) -> Vec<CQ15> {
        let mut out = carriers.to_vec();
        self.correct_in_place(&mut out, phase);
        out
    }

    /// In-place [`PilotPhaseCorrector::correct`]: the hot path rotates
    /// the equalized symbol buffer it already owns, allocating nothing.
    pub fn correct_in_place(&self, carriers: &mut [CQ15], phase: Q16) {
        for c in carriers.iter_mut() {
            let wide: CFx<16> = c.convert();
            let rotated = self.cordic.rotate(wide.re, wide.im, -phase);
            let narrow: CFx<15> = CFx::new(rotated.x, rotated.y).convert();
            *c = narrow.saturate_bits(SAMPLE_BITS);
        }
    }
}

/// Feed-forward timing estimation and correction.
///
/// A residual timing offset of `δ` samples appears in the frequency
/// domain as a per-carrier phase ramp `e^{-j2πlδ/N}`. Tau is the ramp
/// slope (radians per carrier index), estimated from the
/// (phase-corrected) pilots; the correction de-rotates carrier `l` by
/// `l·τ` using a running adder for the angle.
#[derive(Debug, Clone)]
pub struct TimingCorrector {
    cordic: Cordic,
    /// Replicate the paper's small-angle add/sub correction instead of
    /// an exact rotation.
    small_angle: bool,
}

impl Default for TimingCorrector {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingCorrector {
    /// Creates a corrector using exact CORDIC de-rotation.
    pub fn new() -> Self {
        Self {
            cordic: Cordic::new(),
            small_angle: false,
        }
    }

    /// Creates a corrector using the paper's small-angle approximation:
    /// "time corrected by adding the relevant Tau value to the real
    /// component and by subtracting it from the imaginary component".
    pub fn small_angle() -> Self {
        Self {
            cordic: Cordic::new(),
            small_angle: true,
        }
    }

    /// Estimates tau (radians per carrier) from de-scrambled pilots:
    /// "each pilot tone is divided by its subcarrier number and then
    /// the average is calculated".
    ///
    /// `indices` are the pilots' logical subcarrier numbers (±7, ±21
    /// for 64-point).
    pub fn estimate_tau(&self, pilots: &[CQ15], expected_signs: &[i8], indices: &[i32]) -> f64 {
        debug_assert_eq!(pilots.len(), expected_signs.len());
        debug_assert_eq!(pilots.len(), indices.len());
        let mut acc = 0.0;
        let mut count = 0usize;
        for ((&p, &sign), &l) in pilots.iter().zip(expected_signs).zip(indices) {
            if l == 0 {
                continue;
            }
            let v = Cf64::from_fixed(if sign >= 0 { p } else { -p });
            if v.norm() == 0.0 {
                continue;
            }
            acc += v.arg() / l as f64;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            acc / count as f64
        }
    }

    /// Corrects a symbol's occupied carriers: carrier with logical
    /// index `l` is de-rotated by `l·tau`. The per-carrier angle is
    /// produced by a running adder exactly as in the hardware.
    pub fn correct(&self, carriers: &[CQ15], indices: &[i32], tau: f64) -> Vec<CQ15> {
        let mut out = carriers.to_vec();
        self.correct_in_place(&mut out, indices, tau);
        out
    }

    /// In-place [`TimingCorrector::correct`] for the allocation-free
    /// hot path.
    pub fn correct_in_place(&self, carriers: &mut [CQ15], indices: &[i32], tau: f64) {
        debug_assert_eq!(carriers.len(), indices.len());
        let tau_q = Q16::from_f64(tau);
        for (c, &l) in carriers.iter_mut().zip(indices) {
            // Running adder: angle = l · tau accumulated in Q2.16.
            let angle = Q16::from_raw(tau_q.raw().saturating_mul(i64::from(l)));
            let wide: CFx<16> = c.convert();
            *c = if self.small_angle {
                // Paper's approximation: re += angle·im-ish terms
                // reduce to adding tau_l to I and subtracting from
                // Q scaled by the component magnitudes.
                let re = wide.re + wide.im.mul(angle);
                let im = wide.im - wide.re.mul(angle);
                let narrow: CFx<15> = CFx::new(re, im).convert();
                narrow.saturate_bits(SAMPLE_BITS)
            } else {
                let rotated = self.cordic.rotate(wide.re, wide.im, -angle);
                let narrow: CFx<15> = CFx::new(rotated.x, rotated.y).convert();
                narrow.saturate_bits(SAMPLE_BITS)
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rotate_all(carriers: &[CQ15], phase: f64) -> Vec<CQ15> {
        carriers
            .iter()
            .map(|&c| {
                (Cf64::from_fixed(c) * Cf64::from_polar(1.0, phase))
                    .to_fixed::<15>()
                    .saturate_bits(16)
            })
            .collect()
    }

    #[test]
    fn common_phase_estimated_and_removed() {
        let corrector = PilotPhaseCorrector::new();
        let clean: Vec<CQ15> = (0..8).map(|i| CQ15::from_f64(0.2, 0.05 * i as f64)).collect();
        let pilots_clean = [
            CQ15::from_f64(0.25, 0.0),
            CQ15::from_f64(0.25, 0.0),
            CQ15::from_f64(0.25, 0.0),
            CQ15::from_f64(-0.25, 0.0),
        ];
        let signs = [1i8, 1, 1, -1];
        for phase in [-1.0f64, -0.3, 0.2, 0.9] {
            let rx = rotate_all(&clean, phase);
            let rx_pilots = rotate_all(&pilots_clean, phase);
            let est = corrector.estimate_phase(&rx_pilots, &signs);
            assert!(
                (est.to_f64() - phase).abs() < 5e-3,
                "phase {phase}: est {}",
                est.to_f64()
            );
            let fixed = corrector.correct(&rx, est);
            for (f, c) in fixed.iter().zip(&clean) {
                let err = (Cf64::from_fixed(*f) - Cf64::from_fixed(*c)).norm();
                assert!(err < 5e-3, "phase {phase}: err {err}");
            }
        }
    }

    #[test]
    fn zero_pilots_give_zero_phase() {
        let corrector = PilotPhaseCorrector::new();
        assert_eq!(
            corrector.estimate_phase(&[CQ15::ZERO; 4], &[1, 1, 1, -1]),
            Q16::ZERO
        );
    }

    #[test]
    fn tau_estimated_from_phase_ramp() {
        let corrector = TimingCorrector::new();
        let indices = [-21i32, -7, 7, 21];
        let signs = [1i8, 1, 1, -1];
        // A timing offset produces phase l·slope on carrier l.
        for slope in [-0.02f64, -0.005, 0.01, 0.03] {
            let pilots: Vec<CQ15> = indices
                .iter()
                .zip(&signs)
                .map(|(&l, &s)| {
                    (Cf64::from_polar(0.25, slope * l as f64) * Cf64::new(f64::from(s), 0.0))
                        .to_fixed::<15>()
                })
                .collect();
            let tau = corrector.estimate_tau(&pilots, &signs, &indices);
            assert!((tau - slope).abs() < 1e-3, "slope {slope}: tau {tau}");
        }
    }

    #[test]
    fn ramp_correction_flattens_symbol() {
        let corrector = TimingCorrector::new();
        let indices: Vec<i32> = (-26..=26).filter(|&l| l != 0).collect();
        let slope = 0.015;
        let rx: Vec<CQ15> = indices
            .iter()
            .map(|&l| (Cf64::from_polar(0.3, slope * l as f64)).to_fixed::<15>())
            .collect();
        let out = corrector.correct(&rx, &indices, slope);
        for (o, &l) in out.iter().zip(&indices) {
            let v = Cf64::from_fixed(*o);
            assert!(
                v.arg().abs() < 6e-3,
                "carrier {l}: residual phase {}",
                v.arg()
            );
            assert!((v.norm() - 0.3).abs() < 5e-3);
        }
    }

    #[test]
    fn small_angle_model_close_to_exact_for_small_tau() {
        let exact = TimingCorrector::new();
        let approx = TimingCorrector::small_angle();
        let indices: Vec<i32> = (-26..=26).filter(|&l| l != 0).collect();
        let slope = 0.002; // small residual, the regime the paper targets
        let rx: Vec<CQ15> = indices
            .iter()
            .map(|&l| Cf64::from_polar(0.3, slope * l as f64).to_fixed::<15>())
            .collect();
        let a = exact.correct(&rx, &indices, slope);
        let b = approx.correct(&rx, &indices, slope);
        for (x, y) in a.iter().zip(&b) {
            let err = (Cf64::from_fixed(*x) - Cf64::from_fixed(*y)).norm();
            assert!(err < 5e-3, "small-angle deviation {err}");
        }
    }

    #[test]
    fn degenerate_tau_inputs() {
        let corrector = TimingCorrector::new();
        assert_eq!(corrector.estimate_tau(&[], &[], &[]), 0.0);
        // Zero pilots and zero indices are skipped, not divided by.
        let tau = corrector.estimate_tau(
            &[CQ15::ZERO, CQ15::from_f64(0.1, 0.0)],
            &[1, 1],
            &[0, 7],
        );
        assert!(tau.abs() < 1e-9);
    }
}
