//! MIMO detection and post-equalization correction (§IV.B).
//!
//! After channel estimation completes, "OFDM data is read out of the
//! four channel FIFOs. The corresponding channel estimation matrix is
//! read out ... The OFDM data and the channel estimation data are
//! multiplied together in the form of a matrix multiplication. This
//! multiplication results in the equalized OFDM data."
//!
//! * [`ZfDetector`] — the per-subcarrier `y = H⁻¹·r` zero-forcing
//!   MIMO decoder (the "MIMO decoder" entity of Table 4).
//! * [`SisoEqualizer`] — the single-complex-multiply per-carrier
//!   equalizer used by the SISO baseline system.
//! * [`PilotPhaseCorrector`] — pilot extraction, de-scrambling,
//!   averaging and common phase correction.
//! * [`TimingCorrector`] — the feed-forward timing (tau) estimator and
//!   the running-adder per-subcarrier correction.

mod equalize;
mod pilots;

pub use equalize::{DetectError, SisoEqualizer, ZfDetector};
pub use pilots::{PilotPhaseCorrector, TimingCorrector};
