//! Zero-forcing MIMO detection and the SISO per-carrier equalizer.

use std::error::Error;
use std::fmt;

use mimo_chanest::FxMat4;
use mimo_fixed::{CFx, CQ15, CQ16, SAMPLE_BITS};

/// Errors from the detection stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DetectError {
    /// RX stream count must equal the antenna count (4).
    BadStreamCount(usize),
    /// Transmit-stream index out of range (must be 0..4).
    BadStreamIndex(usize),
    /// Carrier counts disagree between streams and the estimate.
    CarrierMismatch {
        /// Carriers in the channel estimate.
        expected: usize,
        /// Carriers supplied.
        got: usize,
    },
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::BadStreamCount(n) => write!(f, "expected 4 receive streams, got {n}"),
            DetectError::BadStreamIndex(k) => {
                write!(f, "transmit-stream index {k} out of range 0..4")
            }
            DetectError::CarrierMismatch { expected, got } => {
                write!(f, "carrier count {got} does not match estimate ({expected})")
            }
        }
    }
}

impl Error for DetectError {}

/// The zero-forcing MIMO decoder: per subcarrier, the received vector
/// (one value per RX antenna) is multiplied by the pre-computed `H⁻¹`
/// — "equalization is performed on a carrier-per-carrier basis".
///
/// # Examples
///
/// ```
/// use mimo_chanest::FxMat4;
/// use mimo_detect::ZfDetector;
/// use mimo_fixed::CQ15;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Identity channel: detection passes values through.
/// let h_inv = vec![FxMat4::identity(); 3];
/// let rx = vec![vec![CQ15::from_f64(0.25, 0.0); 3]; 4];
/// let streams = ZfDetector::new().detect(&h_inv, &rx)?;
/// assert_eq!(streams.len(), 4);
/// assert!((streams[0][0].re.to_f64() - 0.25).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZfDetector {
    _private: (),
}

impl ZfDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Detects all four transmit streams from four receive streams.
    ///
    /// `h_inv[s]` is the inverted channel matrix of occupied carrier
    /// `s`; `rx[antenna][s]` the received value on that carrier. The
    /// result is indexed `[tx_stream][s]`, saturated to the 16-bit bus.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError`] on shape mismatches.
    pub fn detect(
        &self,
        h_inv: &[FxMat4],
        rx: &[Vec<CQ15>],
    ) -> Result<Vec<Vec<CQ15>>, DetectError> {
        if rx.len() != 4 {
            return Err(DetectError::BadStreamCount(rx.len()));
        }
        for stream in rx {
            if stream.len() != h_inv.len() {
                return Err(DetectError::CarrierMismatch {
                    expected: h_inv.len(),
                    got: stream.len(),
                });
            }
        }
        let mut out: Vec<Vec<CQ15>> =
            (0..4).map(|_| Vec::with_capacity(h_inv.len())).collect();
        for (s, inv) in h_inv.iter().enumerate() {
            let r: [CQ16; 4] = [
                rx[0][s].convert(),
                rx[1][s].convert(),
                rx[2][s].convert(),
                rx[3][s].convert(),
            ];
            let y = inv.mul_vec(&r);
            for (k, stream) in out.iter_mut().enumerate() {
                let narrow: CFx<15> = y[k].convert();
                stream.push(narrow.saturate_bits(SAMPLE_BITS));
            }
        }
        Ok(out)
    }

    /// Detects a single transmit stream — row `stream` of the
    /// per-carrier `y = H⁻¹ · r` product — into a caller-provided
    /// buffer: `out[s] = Σ_j H⁻¹[s](stream, j) · rx[j][s]`.
    ///
    /// The per-stream decomposition is what lets the receiver fan the
    /// four spatial channels out across threads: each worker computes
    /// exactly its own row, bit-identically to [`ZfDetector::detect`],
    /// with no shared mutable state and no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError`] on shape mismatches.
    pub fn detect_stream_into(
        &self,
        h_inv: &[FxMat4],
        rx: &[&[CQ15]; 4],
        stream: usize,
        out: &mut [CQ15],
    ) -> Result<(), DetectError> {
        if stream >= 4 {
            return Err(DetectError::BadStreamIndex(stream));
        }
        for antenna in rx {
            if antenna.len() != h_inv.len() {
                return Err(DetectError::CarrierMismatch {
                    expected: h_inv.len(),
                    got: antenna.len(),
                });
            }
        }
        if out.len() != h_inv.len() {
            return Err(DetectError::CarrierMismatch {
                expected: h_inv.len(),
                got: out.len(),
            });
        }
        for (s, inv) in h_inv.iter().enumerate() {
            let mut acc: CQ16 = CFx::ZERO;
            for (j, antenna) in rx.iter().enumerate() {
                let r: CQ16 = antenna[s].convert();
                acc += inv[(stream, j)] * r;
            }
            let narrow: CFx<15> = acc.convert();
            out[s] = narrow.saturate_bits(SAMPLE_BITS);
        }
        Ok(())
    }
}

/// The SISO baseline equalizer: "the corresponding channel estimate is
/// read from the channel estimation memory block and equalization is
/// performed on a carrier-per-carrier basis via a single complex
/// multiplication."
///
/// Construction pre-computes `1/h` per carrier so the run-time work is
/// exactly one complex multiply, as in the hardware.
#[derive(Debug, Clone)]
pub struct SisoEqualizer {
    inv_h: Vec<CQ16>,
}

impl SisoEqualizer {
    /// Builds the equalizer from per-carrier channel estimates.
    /// Carriers whose estimate is numerically zero get a zero
    /// coefficient (data on them is erased rather than amplified).
    pub fn new(h: &[CQ16]) -> Self {
        let inv_h = h
            .iter()
            .map(|&v| {
                let d = v.norm_sqr();
                if d.raw() == 0 {
                    CFx::ZERO
                } else {
                    let c = v.conj();
                    CFx::new(c.re.div(d), c.im.div(d))
                }
            })
            .collect();
        Self { inv_h }
    }

    /// Number of carriers.
    pub fn len(&self) -> usize {
        self.inv_h.len()
    }

    /// `true` if built over zero carriers.
    pub fn is_empty(&self) -> bool {
        self.inv_h.is_empty()
    }

    /// Equalizes one symbol's occupied carriers.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::CarrierMismatch`] on length mismatch.
    pub fn equalize(&self, carriers: &[CQ15]) -> Result<Vec<CQ15>, DetectError> {
        let mut out = vec![CQ15::ZERO; carriers.len()];
        self.equalize_into(carriers, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SisoEqualizer::equalize`] into a
    /// caller-provided buffer — the per-symbol hot-path form the
    /// receiver workspaces use.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::CarrierMismatch`] on length mismatch.
    pub fn equalize_into(&self, carriers: &[CQ15], out: &mut [CQ15]) -> Result<(), DetectError> {
        if carriers.len() != self.inv_h.len() {
            return Err(DetectError::CarrierMismatch {
                expected: self.inv_h.len(),
                got: carriers.len(),
            });
        }
        if out.len() != self.inv_h.len() {
            return Err(DetectError::CarrierMismatch {
                expected: self.inv_h.len(),
                got: out.len(),
            });
        }
        for ((dst, &r), &coeff) in out.iter_mut().zip(carriers).zip(&self.inv_h) {
            let wide: CQ16 = r.convert();
            let eq = wide * coeff;
            let narrow: CFx<15> = eq.convert();
            *dst = narrow.saturate_bits(SAMPLE_BITS);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mimo_chanest::{CordicQrd, Mat4};
    use mimo_fixed::Cf64;

    #[test]
    fn identity_channel_passthrough() {
        let h_inv = vec![FxMat4::identity(); 5];
        let rx: Vec<Vec<CQ15>> = (0..4)
            .map(|a| (0..5).map(|s| CQ15::from_f64(0.1 * (a + s) as f64, -0.05)).collect())
            .collect();
        let streams = ZfDetector::new().detect(&h_inv, &rx).unwrap();
        for (a, stream) in streams.iter().enumerate() {
            for (s, got) in stream.iter().enumerate() {
                let want = Cf64::from_fixed(rx[a][s]);
                assert!((Cf64::from_fixed(*got) - want).norm() < 1e-3);
            }
        }
    }

    #[test]
    fn recovers_streams_through_mixing_channel() {
        // x -> H x; detector applies H^-1 from the real QRD pipeline.
        let h = Mat4::from_fn(|r, c| {
            if r == c {
                Cf64::new(0.8, -0.1)
            } else {
                Cf64::new(0.15 * (r as f64 - c as f64), 0.1)
            }
        });
        let x: Vec<[Cf64; 4]> = (0..8)
            .map(|s| {
                [
                    Cf64::new(0.2, 0.1 * s as f64 / 8.0),
                    Cf64::new(-0.15, 0.2),
                    Cf64::new(0.1, -0.1),
                    Cf64::new(-0.05, -0.15),
                ]
            })
            .collect();
        // Received r = H x per carrier.
        let rx: Vec<Vec<CQ15>> = (0..4)
            .map(|i| {
                x.iter()
                    .map(|xv| {
                        let r = h.mul_vec(xv)[i];
                        r.to_fixed::<15>().saturate_bits(16)
                    })
                    .collect()
            })
            .collect();
        // Invert via the fixed-point QRD pipeline.
        let qrd = CordicQrd::new();
        let decomp = qrd.decompose(&h.to_fixed());
        let r_inv = mimo_chanest::invert_upper_triangular(&decomp.r).unwrap();
        let h_inv = r_inv.mul_mat(&decomp.q_h);
        let h_invs = vec![h_inv; 8];

        let streams = ZfDetector::new().detect(&h_invs, &rx).unwrap();
        for (k, stream) in streams.iter().enumerate() {
            for (s, got) in stream.iter().enumerate() {
                let err = (Cf64::from_fixed(*got) - x[s][k]).norm();
                assert!(err < 0.02, "stream {k} carrier {s}: err {err}");
            }
        }
    }

    #[test]
    fn shape_errors() {
        let det = ZfDetector::new();
        let h_inv = vec![FxMat4::identity(); 2];
        assert!(matches!(
            det.detect(&h_inv, &vec![vec![CQ15::ZERO; 2]; 3]),
            Err(DetectError::BadStreamCount(3))
        ));
        assert!(matches!(
            det.detect(&h_inv, &vec![vec![CQ15::ZERO; 5]; 4]),
            Err(DetectError::CarrierMismatch { expected: 2, got: 5 })
        ));
    }

    #[test]
    fn siso_equalizer_inverts_scalar_channel() {
        let h: Vec<CQ16> = (0..6)
            .map(|i| CFx::from_f64(0.5 + 0.05 * i as f64, -0.2))
            .collect();
        let eq = SisoEqualizer::new(&h);
        let tx = CQ15::from_f64(0.25, -0.125);
        let rx: Vec<CQ15> = h
            .iter()
            .map(|&hh| {
                let wide: CQ16 = tx.convert();
                let through = wide * hh;
                let narrow: CFx<15> = through.convert();
                narrow.saturate_bits(16)
            })
            .collect();
        let out = eq.equalize(&rx).unwrap();
        for got in out {
            assert!((Cf64::from_fixed(got) - Cf64::from_fixed(tx)).norm() < 5e-3);
        }
    }

    #[test]
    fn siso_zero_carrier_erases_not_explodes() {
        let eq = SisoEqualizer::new(&[CFx::ZERO, CFx::ONE]);
        let out = eq.equalize(&[CQ15::from_f64(0.3, 0.3), CQ15::from_f64(0.3, 0.3)]).unwrap();
        assert!(out[0].is_zero());
        assert!(!out[1].is_zero());
    }
}
