//! FPGA synthesis-resource and timing model (§V of the paper).
//!
//! The paper's evaluation is a set of Quartus synthesis tables on a
//! Stratix-IV-class device (424,960 ALUTs) plus an achieved 100 MHz
//! clock. This crate is a *calibrated parametric model* of that
//! synthesis: each entity's resource count is a function of the
//! architecture parameters (channels, FFT size, modulation width),
//! anchored so that the paper's configuration (4×4, 16-QAM, 64-point)
//! reproduces Tables 1–4 exactly, and scaling follows the paper's own
//! statements (512-point ⇒ 8× interleaver/IFFT logic and ~8× memory;
//! channel-estimation logic constant versus FFT size).
//!
//! * [`ResourceUsage`] / [`Device`] — the accounting units and the
//!   target device.
//! * [`SynthConfig`] + [`TxEntity`] / [`RxEntity`] — per-entity
//!   parametric resource formulas.
//! * [`SynthesisReport`] — regenerates Table 1/2 (transmitter) and
//!   Table 3/4 (receiver), including the derived §V claims.
//! * [`timing`] — the 100 MHz clock model, the 440-cycle QRD latency,
//!   channel-estimation latency and the 1 Gbps throughput arithmetic.

mod device;
mod entities;
mod report;
mod resources;
pub mod timing;

pub use device::Device;
pub use entities::{RxEntity, SynthConfig, TxEntity};
pub use report::{ScalingRow, SynthesisReport};
pub use resources::ResourceUsage;
