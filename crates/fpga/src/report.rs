//! Synthesis report generation: Tables 1–4 and the §V scaling claims.

use std::fmt;

use crate::device::Device;
use crate::entities::{RxEntity, SynthConfig, TxEntity};
use crate::resources::ResourceUsage;

/// Which side of the link a report covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Transmitter,
    Receiver,
}

/// A generated synthesis report: per-entity rows plus device totals —
/// the model's reproduction of Tables 1+2 (transmitter) or Tables 3+4
/// (receiver).
///
/// # Examples
///
/// ```
/// use mimo_fpga::{SynthConfig, SynthesisReport};
///
/// let report = SynthesisReport::receiver(SynthConfig::paper());
/// assert_eq!(report.total().aluts, 183_957); // Table 3
/// assert_eq!(report.total().dsp18, 896);
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisReport {
    side: Side,
    cfg: SynthConfig,
    device: Device,
    rows: Vec<(&'static str, ResourceUsage)>,
    infrastructure: ResourceUsage,
    sharing_credit: ResourceUsage,
}

impl SynthesisReport {
    /// Builds the transmitter report (Tables 1 and 2).
    pub fn transmitter(cfg: SynthConfig) -> Self {
        let rows = TxEntity::TABLE2_ROWS
            .iter()
            .map(|e| (e.name(), e.resources(cfg)))
            .collect();
        Self {
            side: Side::Transmitter,
            cfg,
            device: Device::stratix_iv_530(),
            rows,
            infrastructure: TxEntity::Infrastructure.resources(cfg),
            sharing_credit: ResourceUsage::ZERO,
        }
    }

    /// Builds the receiver report (Tables 3 and 4).
    pub fn receiver(cfg: SynthConfig) -> Self {
        let rows = RxEntity::TABLE4_ROWS
            .iter()
            .map(|e| (e.name(), e.resources(cfg)))
            .collect();
        Self {
            side: Side::Receiver,
            cfg,
            device: Device::stratix_iv_530(),
            rows,
            infrastructure: RxEntity::Infrastructure.resources(cfg),
            sharing_credit: RxEntity::sharing_credit(cfg),
        }
    }

    /// The configuration reported on.
    pub fn config(&self) -> SynthConfig {
        self.cfg
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Per-entity rows (the Table 2 / Table 4 content).
    pub fn rows(&self) -> &[(&'static str, ResourceUsage)] {
        &self.rows
    }

    /// The infrastructure remainder (control, ROMs, buffers, FIFOs).
    pub fn infrastructure(&self) -> ResourceUsage {
        self.infrastructure
    }

    /// Total resources (the Table 1 / Table 3 content): entity rows
    /// plus infrastructure minus the synthesis sharing credit.
    pub fn total(&self) -> ResourceUsage {
        let sum: ResourceUsage = self.rows.iter().map(|(_, r)| *r).sum();
        (sum + self.infrastructure).saturating_sub(self.sharing_credit)
    }

    /// Device utilization percentages for the totals, as the "% Used"
    /// column: `(aluts, registers, memory, dsp)`.
    pub fn utilization(&self) -> (f64, f64, f64, f64) {
        self.device.utilization(self.total())
    }

    /// Whether the design fits the device.
    pub fn fits_device(&self) -> bool {
        self.device.fits(self.total())
    }

    /// The §V claim for the receiver: the fraction of ALUTs and DSPs
    /// consumed by the channel-estimation + equalization entities
    /// ("86% of the ALUTS and 77% of the DSP multipliers").
    ///
    /// Returns `(alut_fraction, dsp_fraction)` in percent.
    pub fn channel_est_share(&self) -> Option<(f64, f64)> {
        if self.side != Side::Receiver {
            return None;
        }
        let est: ResourceUsage = RxEntity::CHANNEL_EST_EQ
            .iter()
            .map(|e| e.resources(self.cfg))
            .sum();
        let total = self.total();
        Some((
            100.0 * est.aluts as f64 / total.aluts as f64,
            100.0 * est.dsp18 as f64 / total.dsp18 as f64,
        ))
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let title = match self.side {
            Side::Transmitter => "MIMO Transmitter",
            Side::Receiver => "MIMO Receiver",
        };
        writeln!(
            f,
            "{title} synthesis @ {} channels, {}-pt OFDM, {} bits/carrier — {}",
            self.cfg.n_channels,
            self.cfg.fft_size,
            self.cfg.modulation_bits,
            self.device.name()
        )?;
        writeln!(
            f,
            "{:<22}{:>10}{:>11}{:>13}{:>8}",
            "Function", "ALUTs", "Registers", "Memory bits", "DSP"
        )?;
        for (name, r) in &self.rows {
            writeln!(
                f,
                "{:<22}{:>10}{:>11}{:>13}{:>8}",
                name, r.aluts, r.registers, r.memory_bits, r.dsp18
            )?;
        }
        let i = self.infrastructure;
        writeln!(
            f,
            "{:<22}{:>10}{:>11}{:>13}{:>8}",
            "(infrastructure)", i.aluts, i.registers, i.memory_bits, i.dsp18
        )?;
        let t = self.total();
        writeln!(
            f,
            "{:<22}{:>10}{:>11}{:>13}{:>8}",
            "TOTAL", t.aluts, t.registers, t.memory_bits, t.dsp18
        )?;
        let (a, r, m, d) = self.utilization();
        writeln!(f, "% used: ALUTs {a:.1}  regs {r:.1}  memory {m:.2}  DSP {d:.1}")
    }
}

/// One row of the FFT-size scaling analysis (the §V discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingRow {
    /// FFT size.
    pub fft_size: usize,
    /// Transmitter totals at that size.
    pub tx_total: ResourceUsage,
    /// Receiver totals at that size.
    pub rx_total: ResourceUsage,
    /// Whether both sides still fit the paper's device.
    pub fits: bool,
}

impl SynthesisReport {
    /// Sweeps the FFT size and reports totals — executable form of the
    /// paper's "there are plenty of memory resources available on the
    /// FPGA to accommodate a 512-point OFDM system".
    pub fn scaling_analysis(base: SynthConfig) -> Vec<ScalingRow> {
        [64usize, 128, 256, 512]
            .into_iter()
            .map(|n| {
                let cfg = SynthConfig {
                    fft_size: n,
                    ..base
                };
                let tx = SynthesisReport::transmitter(cfg);
                let rx = SynthesisReport::receiver(cfg);
                ScalingRow {
                    fft_size: n,
                    tx_total: tx.total(),
                    rx_total: rx.total(),
                    fits: tx.fits_device() && rx.fits_device(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals_exact() {
        let report = SynthesisReport::transmitter(SynthConfig::paper());
        let t = report.total();
        assert_eq!(t, ResourceUsage::new(33_423, 12_320, 265_408, 32));
        let (a, r, m, d) = report.utilization();
        assert!((a - 7.8).abs() < 0.07, "ALUT% {a}");
        assert!((r - 2.9).abs() < 0.05, "reg% {r}");
        assert!((m - 1.2).abs() < 0.06, "mem% {m}");
        assert!((d - 3.1).abs() < 0.05, "dsp% {d}");
    }

    #[test]
    fn table3_totals_exact() {
        let report = SynthesisReport::receiver(SynthConfig::paper());
        let t = report.total();
        assert_eq!(t, ResourceUsage::new(183_957, 173_335, 367_060, 896));
        let (a, r, m, d) = report.utilization();
        assert!((a - 43.2).abs() < 0.1, "ALUT% {a}");
        assert!((r - 40.7).abs() < 0.1, "reg% {r}");
        assert!((m - 1.72).abs() < 0.01, "mem% {m}");
        assert!((d - 87.5).abs() < 0.01, "dsp% {d}");
    }

    #[test]
    fn channel_est_share_matches_claims() {
        let report = SynthesisReport::receiver(SynthConfig::paper());
        let (aluts, dsps) = report.channel_est_share().unwrap();
        // Paper: "86% of the ALUTS and 77% of the DSP multipliers".
        assert!((aluts - 86.0).abs() < 1.0, "ALUT share {aluts:.1}%");
        assert!((dsps - 77.0).abs() < 1.0, "DSP share {dsps:.1}%");
        // Transmitter has no such claim.
        assert!(SynthesisReport::transmitter(SynthConfig::paper())
            .channel_est_share()
            .is_none());
    }

    #[test]
    fn scaling_512_fits_device() {
        let rows = SynthesisReport::scaling_analysis(SynthConfig::paper());
        assert_eq!(rows.len(), 4);
        let r512 = rows.iter().find(|r| r.fft_size == 512).unwrap();
        // The paper: memory scales ~8x and still fits comfortably.
        let r64 = rows.iter().find(|r| r.fft_size == 64).unwrap();
        let mem_ratio = r512.rx_total.memory_bits as f64 / r64.rx_total.memory_bits as f64;
        assert!((mem_ratio - 8.0).abs() < 0.5, "memory ratio {mem_ratio}");
        assert!(r512.fits, "512-point must fit the device");
        // Memory still a small fraction of the device.
        let frac = r512.rx_total.memory_bits as f64 / 21_233_664.0;
        assert!(frac < 0.25, "512-pt RX memory fraction {frac}");
    }

    #[test]
    fn report_renders_all_rows() {
        let text = SynthesisReport::receiver(SynthConfig::paper()).to_string();
        for name in ["QR decomposition", "Viterbi decoder", "TOTAL", "% used"] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn dsp_budget_fits_1024_at_paper_config_only() {
        // At 4 channels the RX uses 896 of 1,024 DSPs (87.5%): the
        // paper's headroom comment. Doubling channels would not fit.
        let report = SynthesisReport::receiver(SynthConfig {
            n_channels: 8,
            ..SynthConfig::paper()
        });
        assert!(!report.fits_device());
    }
}
