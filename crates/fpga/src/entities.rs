//! Per-entity parametric resource formulas, calibrated on Tables 2/4.
//!
//! Every formula is anchored at the paper's synthesis configuration
//! (4 channels, 16-QAM ⇒ 192 coded bits/symbol, 64-point OFDM) and
//! projected to other configurations with the scaling laws the paper
//! itself states in §V:
//!
//! * interleaver/deinterleaver and (I)FFT resources scale linearly
//!   with `channels × block size` ("for a 512-point OFDM system the
//!   IFFT and interleaver will require eight times as many resources");
//! * channel-estimation/equalization *logic* is size-independent ("the
//!   size and complexity of the channel estimation and equalisation
//!   blocks will remain constant with respect to OFDM frame size")
//!   while their buffering memory grows with the frame ("the number of
//!   memory bits required increases by a factor of approximately
//!   eight");
//! * the time synchroniser is fixed (32 taps regardless of FFT size).

use crate::resources::ResourceUsage;

/// The paper's anchor configuration for calibration.
const ANCHOR_CHANNELS: u64 = 4;
const ANCHOR_FFT: u64 = 64;
const ANCHOR_NCBPS: u64 = 192; // 48 carriers × 4 bits (16-QAM)
const ANCHOR_FFT_STAGES: u64 = 6; // log2(64) butterfly pipeline stages

/// DSP blocks in a streaming FFT scale with the number of butterfly
/// pipeline stages (one complex multiplier per stage), i.e. log2(N) —
/// not with N itself.
fn fft_stages(n: u64) -> u64 {
    63 - n.leading_zeros() as u64
}

/// The matrix-inversion pipeline (QRD, R-inverse, Qᵀ multiply, MIMO
/// decoder) scales with the square of the antenna count (cell count of
/// the systolic array); a SISO system needs none of it (scalar
/// equalization replaces the whole pipeline).
fn matrix_pipeline_scale(ch: u64) -> (u64, u64) {
    if ch <= 1 {
        (0, 1)
    } else {
        (ch * ch, ANCHOR_CHANNELS * ANCHOR_CHANNELS)
    }
}

/// Synthesis-time configuration of the transceiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SynthConfig {
    /// Antennas / spatial streams (the paper's system: 4).
    pub n_channels: usize,
    /// OFDM FFT size (64..512).
    pub fft_size: usize,
    /// Bits per subcarrier (1, 2, 4, 6).
    pub modulation_bits: usize,
}

impl SynthConfig {
    /// The paper's synthesis point: 4×4, 64-point, 16-QAM.
    pub fn paper() -> Self {
        Self {
            n_channels: 4,
            fft_size: 64,
            modulation_bits: 4,
        }
    }

    /// Coded bits per OFDM symbol (N_CBPS).
    pub fn ncbps(&self) -> u64 {
        (48 * self.fft_size / 64 * self.modulation_bits) as u64
    }

    /// Channels as u64 for rational scaling.
    fn ch(&self) -> u64 {
        self.n_channels as u64
    }

    /// FFT size as u64.
    fn n(&self) -> u64 {
        self.fft_size as u64
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Transmitter entities (Table 2) plus the infrastructure remainder
/// that makes Table 1's totals (control FSMs, preamble ROMs, mapper
/// LUTs, FIFOs, JESD204A framing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxEntity {
    /// The generic convolutional encoder (per-channel replicas).
    ConvEncoder,
    /// The register-built ping-pong block interleaver.
    BlockInterleaver,
    /// The transmit IFFT cores.
    Ifft,
    /// The cyclic-prefix dual-port buffer control.
    CyclicPrefix,
    /// Everything else in Fig 1: master FSM, STS/LTS/pilot ROMs,
    /// symbol-mapper LUTs, FIFOs and the JESD204A interface.
    Infrastructure,
}

impl TxEntity {
    /// All Table 2 rows, in the paper's order.
    pub const TABLE2_ROWS: [TxEntity; 4] = [
        TxEntity::ConvEncoder,
        TxEntity::BlockInterleaver,
        TxEntity::Ifft,
        TxEntity::CyclicPrefix,
    ];

    /// The paper's row label.
    pub fn name(&self) -> &'static str {
        match self {
            TxEntity::ConvEncoder => "Conv encoder",
            TxEntity::BlockInterleaver => "Block interleaver",
            TxEntity::Ifft => "IFFT",
            TxEntity::CyclicPrefix => "Cyclic prefix",
            TxEntity::Infrastructure => "Control/ROMs/FIFOs",
        }
    }

    /// Modelled resources at a configuration.
    pub fn resources(&self, cfg: SynthConfig) -> ResourceUsage {
        match self {
            // Anchor 32/136/0/0 across 4 channels; logic ∝ channels.
            TxEntity::ConvEncoder => {
                ResourceUsage::new(32, 136, 0, 0).scale_rational(cfg.ch(), ANCHOR_CHANNELS)
            }
            // Anchor 28,016/1,730/0/0; register structure ∝ ch × N_CBPS.
            TxEntity::BlockInterleaver => ResourceUsage::new(28_016, 1_730, 0, 0)
                .scale_rational(cfg.ch() * cfg.ncbps(), ANCHOR_CHANNELS * ANCHOR_NCBPS),
            // Anchor 3,854/9,152/8,896/32; logic & memory ∝ ch × N
            // (the paper's "eight times as many resources" for
            // 512-point), DSP ∝ ch × log2(N) (pipeline stages).
            TxEntity::Ifft => {
                let logic = ResourceUsage::new(3_854, 9_152, 8_896, 0)
                    .scale_rational(cfg.ch() * cfg.n(), ANCHOR_CHANNELS * ANCHOR_FFT);
                let dsp = ResourceUsage::new(0, 0, 0, 32).scale_rational(
                    cfg.ch() * fft_stages(cfg.n()),
                    ANCHOR_CHANNELS * ANCHOR_FFT_STAGES,
                );
                logic + dsp
            }
            // Anchor 40/128/0/0; control ∝ channels. (The buffer
            // itself is block RAM counted under infrastructure, as in
            // the paper's table.)
            TxEntity::CyclicPrefix => {
                ResourceUsage::new(40, 128, 0, 0).scale_rational(cfg.ch(), ANCHOR_CHANNELS)
            }
            // Remainder so Table 1 totals close: logic ~constant,
            // memory (ROMs/FIFOs/CP buffers) ∝ N per channel.
            TxEntity::Infrastructure => ResourceUsage::new(1_481, 1_174, 0, 0)
                .scale_rational(cfg.ch(), ANCHOR_CHANNELS)
                + ResourceUsage::new(0, 0, 256_512, 0)
                    .scale_rational(cfg.ch() * cfg.n(), ANCHOR_CHANNELS * ANCHOR_FFT),
        }
    }
}

/// Receiver entities (Table 4) plus infrastructure and the synthesis
/// sharing credit that closes Table 3's totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RxEntity {
    /// The soft-capable block de-interleaver.
    BlockDeinterleaver,
    /// The receive FFT cores.
    Fft,
    /// The 32-tap correlator + CORDIC time synchroniser.
    TimeSynchroniser,
    /// The Viterbi decoders.
    ViterbiDecoder,
    /// The R-matrix back-substitution inverse.
    RMatrixInverse,
    /// The per-subcarrier zero-forcing MIMO decoder (H⁻¹·r).
    MimoDecoder,
    /// The CORDIC systolic QR-decomposition array.
    QrDecomposition,
    /// The 4×4 matrix multiplier forming R⁻¹·Qᵀ.
    QrMultiplier,
    /// Input circular buffers, LTS/H⁻¹ memory arrays, FIFOs, control.
    Infrastructure,
}

impl RxEntity {
    /// All Table 4 rows, in the paper's order.
    pub const TABLE4_ROWS: [RxEntity; 8] = [
        RxEntity::BlockDeinterleaver,
        RxEntity::Fft,
        RxEntity::TimeSynchroniser,
        RxEntity::ViterbiDecoder,
        RxEntity::RMatrixInverse,
        RxEntity::MimoDecoder,
        RxEntity::QrDecomposition,
        RxEntity::QrMultiplier,
    ];

    /// The channel-estimation + equalization entities the paper singles
    /// out ("account for 86% of the ALUTS and 77% of the DSP
    /// multipliers").
    pub const CHANNEL_EST_EQ: [RxEntity; 4] = [
        RxEntity::RMatrixInverse,
        RxEntity::MimoDecoder,
        RxEntity::QrDecomposition,
        RxEntity::QrMultiplier,
    ];

    /// The paper's row label.
    pub fn name(&self) -> &'static str {
        match self {
            RxEntity::BlockDeinterleaver => "Block deinterleaver",
            RxEntity::Fft => "FFT",
            RxEntity::TimeSynchroniser => "Time synchroniser",
            RxEntity::ViterbiDecoder => "Viterbi decoder",
            RxEntity::RMatrixInverse => "R matrix inverse",
            RxEntity::MimoDecoder => "MIMO decoder",
            RxEntity::QrDecomposition => "QR decomposition",
            RxEntity::QrMultiplier => "QR multiplier",
            RxEntity::Infrastructure => "Buffers/memories/control",
        }
    }

    /// Modelled resources at a configuration.
    pub fn resources(&self, cfg: SynthConfig) -> ResourceUsage {
        match self {
            RxEntity::BlockDeinterleaver => ResourceUsage::new(13_772, 1_772, 0, 0)
                .scale_rational(cfg.ch() * cfg.ncbps(), ANCHOR_CHANNELS * ANCHOR_NCBPS),
            RxEntity::Fft => {
                let logic = ResourceUsage::new(3_196, 9_650, 10_736, 0)
                    .scale_rational(cfg.ch() * cfg.n(), ANCHOR_CHANNELS * ANCHOR_FFT);
                let dsp = ResourceUsage::new(0, 0, 0, 64).scale_rational(
                    cfg.ch() * fft_stages(cfg.n()),
                    ANCHOR_CHANNELS * ANCHOR_FFT_STAGES,
                );
                logic + dsp
            }
            // Fixed 32-tap structure: size-independent.
            RxEntity::TimeSynchroniser => ResourceUsage::new(3_557, 8_983, 0, 128),
            RxEntity::ViterbiDecoder => ResourceUsage::new(5_028, 2_848, 18_460, 0)
                .scale_rational(cfg.ch(), ANCHOR_CHANNELS),
            // Channel-est/EQ: logic constant vs frame size (∝ ch² vs
            // antennas, zero for SISO); buffering memory ∝ N.
            RxEntity::RMatrixInverse => {
                let (num, den) = matrix_pipeline_scale(cfg.ch());
                ResourceUsage::new(55_431, 31_711, 6_226, 56)
                    .scale_memory_rational(cfg.n(), ANCHOR_FFT)
                    .scale_rational(num, den)
            }
            RxEntity::MimoDecoder => {
                let (num, den) = matrix_pipeline_scale(cfg.ch());
                ResourceUsage::new(1_036, 768, 0, 128).scale_rational(num, den)
            }
            RxEntity::QrDecomposition => {
                let (num, den) = matrix_pipeline_scale(cfg.ch());
                ResourceUsage::new(101_697, 109_447, 322, 248)
                    .scale_memory_rational(cfg.n(), ANCHOR_FFT)
                    .scale_rational(num, den)
            }
            RxEntity::QrMultiplier => {
                let (num, den) = matrix_pipeline_scale(cfg.ch());
                ResourceUsage::new(1_368, 1_169, 0, 256).scale_rational(num, den)
            }
            // Input buffers, LTS freq-domain buffers (16 memories),
            // inverted-estimate memories, FIFOs: memory ∝ ch × N;
            // registers for control; 16 spare DSPs (pilot/tau datapath).
            RxEntity::Infrastructure => ResourceUsage::new(0, 6_987, 0, 16)
                .scale_rational(cfg.ch(), ANCHOR_CHANNELS)
                + ResourceUsage::new(0, 0, 331_316, 0)
                    .scale_rational(cfg.ch() * cfg.n(), ANCHOR_CHANNELS * ANCHOR_FFT),
        }
    }

    /// The synthesis sharing credit: cross-entity optimization in the
    /// paper's top-level synthesis makes Table 3's ALUT total 1,128
    /// smaller than the sum of Table 4's rows. Scales with the logic
    /// that can be shared (∝ channels).
    pub fn sharing_credit(cfg: SynthConfig) -> ResourceUsage {
        ResourceUsage::new(1_128, 0, 0, 0).scale_rational(cfg.ch(), ANCHOR_CHANNELS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_anchor_values_exact() {
        let cfg = SynthConfig::paper();
        assert_eq!(
            TxEntity::ConvEncoder.resources(cfg),
            ResourceUsage::new(32, 136, 0, 0)
        );
        assert_eq!(
            TxEntity::BlockInterleaver.resources(cfg),
            ResourceUsage::new(28_016, 1_730, 0, 0)
        );
        assert_eq!(
            TxEntity::Ifft.resources(cfg),
            ResourceUsage::new(3_854, 9_152, 8_896, 32)
        );
        assert_eq!(
            TxEntity::CyclicPrefix.resources(cfg),
            ResourceUsage::new(40, 128, 0, 0)
        );
    }

    #[test]
    fn table4_anchor_values_exact() {
        let cfg = SynthConfig::paper();
        let expect = [
            (RxEntity::BlockDeinterleaver, (13_772, 1_772, 0, 0)),
            (RxEntity::Fft, (3_196, 9_650, 10_736, 64)),
            (RxEntity::TimeSynchroniser, (3_557, 8_983, 0, 128)),
            (RxEntity::ViterbiDecoder, (5_028, 2_848, 18_460, 0)),
            (RxEntity::RMatrixInverse, (55_431, 31_711, 6_226, 56)),
            (RxEntity::MimoDecoder, (1_036, 768, 0, 128)),
            (RxEntity::QrDecomposition, (101_697, 109_447, 322, 248)),
            (RxEntity::QrMultiplier, (1_368, 1_169, 0, 256)),
        ];
        for (entity, (a, r, m, d)) in expect {
            assert_eq!(
                entity.resources(cfg),
                ResourceUsage::new(a, r, m, d),
                "{}",
                entity.name()
            );
        }
    }

    #[test]
    fn fft_dsp_scales_with_stages_not_size() {
        let big = SynthConfig {
            fft_size: 512,
            ..SynthConfig::paper()
        };
        // 512-pt: 9 stages vs 6 -> 64 × 9/6 = 96 DSP, not 512.
        assert_eq!(RxEntity::Fft.resources(big).dsp18, 96);
        assert_eq!(TxEntity::Ifft.resources(big).dsp18, 48);
    }

    #[test]
    fn siso_has_no_matrix_pipeline() {
        let siso = SynthConfig {
            n_channels: 1,
            ..SynthConfig::paper()
        };
        for e in RxEntity::CHANNEL_EST_EQ {
            assert_eq!(e.resources(siso), ResourceUsage::ZERO, "{}", e.name());
        }
    }

    #[test]
    fn interleaver_scales_8x_at_512_point() {
        let big = SynthConfig {
            fft_size: 512,
            ..SynthConfig::paper()
        };
        let base = TxEntity::BlockInterleaver.resources(SynthConfig::paper());
        let scaled = TxEntity::BlockInterleaver.resources(big);
        assert_eq!(scaled.aluts, 8 * base.aluts);
        let base = TxEntity::Ifft.resources(SynthConfig::paper());
        let scaled = TxEntity::Ifft.resources(big);
        assert_eq!(scaled.aluts, 8 * base.aluts);
        assert_eq!(scaled.memory_bits, 8 * base.memory_bits);
    }

    #[test]
    fn channel_est_logic_constant_vs_fft_size() {
        let big = SynthConfig {
            fft_size: 512,
            ..SynthConfig::paper()
        };
        for e in RxEntity::CHANNEL_EST_EQ {
            let base = e.resources(SynthConfig::paper());
            let scaled = e.resources(big);
            assert_eq!(scaled.aluts, base.aluts, "{}", e.name());
            assert_eq!(scaled.dsp18, base.dsp18, "{}", e.name());
        }
        // But QRD/R-inverse buffering memory grows 8x.
        assert_eq!(
            RxEntity::RMatrixInverse.resources(big).memory_bits,
            8 * RxEntity::RMatrixInverse.resources(SynthConfig::paper()).memory_bits
        );
    }

    #[test]
    fn siso_uses_roughly_quarter_of_per_channel_entities() {
        let siso = SynthConfig {
            n_channels: 1,
            ..SynthConfig::paper()
        };
        assert_eq!(TxEntity::ConvEncoder.resources(siso).aluts, 8);
        assert_eq!(RxEntity::ViterbiDecoder.resources(siso).aluts, 1_257);
        // Time sync is shared: unchanged.
        assert_eq!(RxEntity::TimeSynchroniser.resources(siso).dsp18, 128);
    }
}
