//! Clock, latency and throughput model — the arithmetic behind the
//! paper's 100 MHz clock, 440-cycle QRD latency and 1 Gbps headline.

/// The clock frequency both the transmitter and receiver achieve
/// ("A clock frequency of 100 MHz is achieved").
pub const CLOCK_HZ: f64 = 100.0e6;

/// CORDIC element pipeline latency in cycles.
pub const CORDIC_LATENCY: u32 = 20;

/// Pipeline latency of the R-inverse back-substitution block: the
/// longest dependency chain in the paper's equations is R⁻¹(0,3),
/// which needs three levels of multiply-accumulate (3 × 5-stage
/// pipelined complex multiplier) behind the reciprocal unit (20).
pub const RINV_LATENCY: u32 = 35;

/// Pipeline latency of the 4×4 matrix multiplier (R⁻¹·Qᵀ): four
/// multiply-accumulate stages of a 5-stage pipelined multiplier.
pub const QR_MULTIPLY_LATENCY: u32 = 20;

/// QRD systolic-array datapath latency in cycles for an `n × n`
/// matrix: the input skew of the last element (`n(n+1)/2` beats) plus
/// the boundary/internal CORDIC chain (`3n` stages), each a
/// [`CORDIC_LATENCY`]-cycle element. For n = 4 this is the paper's
/// "data-path latency of 440 clock cycles".
pub fn qrd_latency_cycles(n: usize) -> u32 {
    ((n * (n + 1) / 2 + 3 * n) as u32) * CORDIC_LATENCY
}

/// Cycles for the QRD scheduler to stream every subcarrier's channel
/// matrix through the array: subcarriers are processed in bursts of
/// [`CORDIC_LATENCY`] across 16 memories, with a 3-burst column skew.
pub fn qrd_ingest_cycles(n_subcarriers: usize) -> u64 {
    let burst = CORDIC_LATENCY as u64;
    let groups = (n_subcarriers as u64).div_ceil(burst);
    (groups * 16 + 3) * burst
}

/// Total channel-estimation latency in cycles: LTS reception
/// (2.5·N × 4 slots) + FFT of the averaged LTS + matrix pipeline over
/// all occupied subcarriers — "the entire channel estimation process
/// has a massive latency", which is why data FIFOs buffer the payload.
pub fn channel_estimation_latency_cycles(fft_size: usize) -> u64 {
    let n = fft_size as u64;
    let lts_rx = 4 * (5 * n / 2);
    let fft = n + 2 * (63 - n.leading_zeros() as u64) + 4;
    let occupied = 52 * n / 64;
    lts_rx
        + fft
        + qrd_ingest_cycles(occupied as usize)
        + u64::from(qrd_latency_cycles(4))
        + u64::from(RINV_LATENCY)
        + u64::from(QR_MULTIPLY_LATENCY)
}

/// Information throughput in bits/second for a configuration:
/// `streams × data_carriers × bits_per_carrier × code_rate` per OFDM
/// symbol of `1.25·N` samples at [`CLOCK_HZ`].
///
/// # Examples
///
/// ```
/// use mimo_fpga::timing::data_rate_bps;
///
/// // The headline: 4 streams, 64-QAM, rate 3/4 = 1.08 Gbps.
/// let rate = data_rate_bps(4, 64, 6, 3, 4);
/// assert!(rate > 1.0e9);
/// ```
pub fn data_rate_bps(
    n_streams: usize,
    fft_size: usize,
    bits_per_carrier: usize,
    rate_num: usize,
    rate_den: usize,
) -> f64 {
    let data_carriers = 48 * fft_size / 64;
    let info_bits = n_streams * data_carriers * bits_per_carrier * rate_num / rate_den;
    let symbol_s = (fft_size + fft_size / 4) as f64 / CLOCK_HZ;
    info_bits as f64 / symbol_s
}

/// Burst efficiency: fraction of on-air time carrying payload, for a
/// burst of `n_symbols` data symbols behind the `(1 + n_tx)`-slot
/// preamble.
pub fn burst_efficiency(n_tx: usize, fft_size: usize, n_symbols: usize) -> f64 {
    let preamble = (1 + n_tx) * (5 * fft_size / 2);
    let data = n_symbols * (fft_size + fft_size / 4);
    data as f64 / (preamble + data) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qrd_latency_is_440_for_4x4() {
        assert_eq!(qrd_latency_cycles(4), 440);
    }

    #[test]
    fn headline_is_1_08_gbps() {
        let bps = data_rate_bps(4, 64, 6, 3, 4);
        assert!((bps - 1.08e9).abs() < 1e3, "got {bps}");
        // And invariant to FFT size.
        assert!((data_rate_bps(4, 512, 6, 3, 4) - bps).abs() < 1e3);
    }

    #[test]
    fn paper_synthesis_config_rate() {
        // 16-QAM r=1/2: 4 × 48 × 4 × 1/2 / 800ns = 480 Mbps.
        let bps = data_rate_bps(4, 64, 4, 1, 2);
        assert!((bps - 480.0e6).abs() < 1e3);
    }

    #[test]
    fn siso_is_quarter_of_mimo() {
        let mimo = data_rate_bps(4, 64, 6, 3, 4);
        let siso = data_rate_bps(1, 64, 6, 3, 4);
        assert!((mimo / siso - 4.0).abs() < 1e-9);
    }

    #[test]
    fn estimation_latency_grows_with_fft_size() {
        let small = channel_estimation_latency_cycles(64);
        let large = channel_estimation_latency_cycles(512);
        assert!(large > 4 * small, "64-pt {small}, 512-pt {large}");
        // "Massive latency": thousands of cycles even at 64-point.
        assert!(small > 1_000);
    }

    #[test]
    fn ingest_covers_subcarrier_groups() {
        // 52 occupied carriers -> 3 groups of 20 -> (3*16+3)*20 cycles.
        assert_eq!(qrd_ingest_cycles(52), 51 * 20);
    }

    #[test]
    fn burst_efficiency_approaches_one_for_long_bursts() {
        let short = burst_efficiency(4, 64, 2);
        let long = burst_efficiency(4, 64, 500);
        assert!(short < 0.2);
        assert!(long > 0.97);
    }
}
