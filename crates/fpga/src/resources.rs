//! The resource accounting unit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// FPGA resources consumed by an entity, in the four categories the
/// paper's tables report.
///
/// # Examples
///
/// ```
/// use mimo_fpga::ResourceUsage;
///
/// let a = ResourceUsage::new(100, 200, 0, 4);
/// let b = ResourceUsage::new(50, 50, 1024, 0);
/// let total = a + b;
/// assert_eq!(total.aluts, 150);
/// assert_eq!(total.memory_bits, 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ResourceUsage {
    /// Adaptive look-up tables.
    pub aluts: u64,
    /// Flip-flop registers.
    pub registers: u64,
    /// Embedded memory bits.
    pub memory_bits: u64,
    /// 18-bit embedded DSP multiplier blocks.
    pub dsp18: u64,
}

impl ResourceUsage {
    /// No resources.
    pub const ZERO: Self = Self::new(0, 0, 0, 0);

    /// Creates a usage record.
    pub const fn new(aluts: u64, registers: u64, memory_bits: u64, dsp18: u64) -> Self {
        Self {
            aluts,
            registers,
            memory_bits,
            dsp18,
        }
    }

    /// Saturating subtraction per category (used for the synthesis
    /// sharing credit, which can exceed an individual category).
    pub fn saturating_sub(self, rhs: Self) -> Self {
        Self::new(
            self.aluts.saturating_sub(rhs.aluts),
            self.registers.saturating_sub(rhs.registers),
            self.memory_bits.saturating_sub(rhs.memory_bits),
            self.dsp18.saturating_sub(rhs.dsp18),
        )
    }

    /// Scales every category by the exact rational `num/den`, rounding
    /// to nearest. This is how calibrated anchor values are projected
    /// to other configurations.
    pub fn scale_rational(self, num: u64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        let scale = |v: u64| (v * num + den / 2) / den;
        Self::new(
            scale(self.aluts),
            scale(self.registers),
            scale(self.memory_bits),
            scale(self.dsp18),
        )
    }

    /// Scales only the memory-bits category (entities whose logic is
    /// size-independent but whose buffering grows with the frame).
    pub fn scale_memory_rational(self, num: u64, den: u64) -> Self {
        assert!(den != 0, "zero denominator");
        Self::new(
            self.aluts,
            self.registers,
            (self.memory_bits * num + den / 2) / den,
            self.dsp18,
        )
    }
}

impl Add for ResourceUsage {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(
            self.aluts + rhs.aluts,
            self.registers + rhs.registers,
            self.memory_bits + rhs.memory_bits,
            self.dsp18 + rhs.dsp18,
        )
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for ResourceUsage {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl Sum for ResourceUsage {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ALUTs, {} regs, {} mem bits, {} DSP",
            self.aluts, self.registers, self.memory_bits, self.dsp18
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_sum() {
        let parts = [
            ResourceUsage::new(1, 2, 3, 4),
            ResourceUsage::new(10, 20, 30, 40),
        ];
        let total: ResourceUsage = parts.iter().copied().sum();
        assert_eq!(total, ResourceUsage::new(11, 22, 33, 44));
    }

    #[test]
    fn rational_scaling_rounds_to_nearest() {
        let r = ResourceUsage::new(100, 10, 7, 3);
        let scaled = r.scale_rational(1, 3);
        assert_eq!(scaled, ResourceUsage::new(33, 3, 2, 1));
        // Identity scaling is exact.
        assert_eq!(r.scale_rational(8, 8), r);
    }

    #[test]
    fn memory_only_scaling() {
        let r = ResourceUsage::new(100, 10, 64, 3);
        let scaled = r.scale_memory_rational(8, 1);
        assert_eq!(scaled, ResourceUsage::new(100, 10, 512, 3));
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = ResourceUsage::new(5, 5, 5, 5);
        let b = ResourceUsage::new(10, 1, 0, 5);
        assert_eq!(a - b, ResourceUsage::new(0, 4, 5, 0));
    }

    #[test]
    fn display_nonempty() {
        assert!(ResourceUsage::ZERO.to_string().contains("ALUTs"));
    }
}
