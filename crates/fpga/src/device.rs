//! The target FPGA device catalog.

use crate::resources::ResourceUsage;

/// An FPGA device's available resources. The paper's percentages imply
/// a Stratix-IV-class part with 424,960 ALUTs, 21,233,664 memory bits
/// and 1,024 18-bit DSP blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    name: &'static str,
    capacity: ResourceUsage,
}

impl Device {
    /// The paper's device (Stratix IV 530-class).
    pub fn stratix_iv_530() -> Self {
        Self {
            name: "Stratix IV (424,960-ALUT class)",
            capacity: ResourceUsage::new(424_960, 424_960, 21_233_664, 1_024),
        }
    }

    /// A smaller device for what-if floor-planning (half the fabric).
    pub fn stratix_iv_230() -> Self {
        Self {
            name: "Stratix IV (212,480-ALUT class)",
            capacity: ResourceUsage::new(212_480, 212_480, 14_625_792, 1_288 / 2),
        }
    }

    /// Device display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Available resources.
    pub fn capacity(&self) -> ResourceUsage {
        self.capacity
    }

    /// Percentage of each category a usage consumes, as the paper's
    /// "% Used" column: `(aluts%, registers%, memory%, dsp%)`.
    pub fn utilization(&self, used: ResourceUsage) -> (f64, f64, f64, f64) {
        let pct = |u: u64, c: u64| 100.0 * u as f64 / c as f64;
        (
            pct(used.aluts, self.capacity.aluts),
            pct(used.registers, self.capacity.registers),
            pct(used.memory_bits, self.capacity.memory_bits),
            pct(used.dsp18, self.capacity.dsp18),
        )
    }

    /// `true` if the usage fits the device in every category.
    pub fn fits(&self, used: ResourceUsage) -> bool {
        used.aluts <= self.capacity.aluts
            && used.registers <= self.capacity.registers
            && used.memory_bits <= self.capacity.memory_bits
            && used.dsp18 <= self.capacity.dsp18
    }
}

impl Default for Device {
    fn default() -> Self {
        Self::stratix_iv_530()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_percentages_reproduce() {
        // Table 1: 33,423 ALUTs = 7.8%; Table 3: 183,957 = 43.2%.
        let dev = Device::stratix_iv_530();
        let (a, ..) = dev.utilization(ResourceUsage::new(33_423, 0, 0, 0));
        assert!((a - 7.8).abs() < 0.1, "TX ALUT% {a}");
        let (a, ..) = dev.utilization(ResourceUsage::new(183_957, 0, 0, 0));
        assert!((a - 43.2).abs() < 0.1, "RX ALUT% {a}");
        // Table 3 DSP: 896/1024 = 87.5%.
        let (.., d) = dev.utilization(ResourceUsage::new(0, 0, 0, 896));
        assert!((d - 87.5).abs() < 1e-9);
    }

    #[test]
    fn fits_checks_every_category() {
        let dev = Device::stratix_iv_530();
        assert!(dev.fits(ResourceUsage::new(400_000, 400_000, 1_000_000, 1_000)));
        assert!(!dev.fits(ResourceUsage::new(500_000, 0, 0, 0)));
        assert!(!dev.fits(ResourceUsage::new(0, 0, 0, 1_025)));
    }
}
