//! The workspace walker: discovers crates, lexes every `.rs` source
//! file, runs the rules, and assembles the [`Report`].

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::analysis::{FileAnalysis, FileKind};
use crate::callgraph::CallGraph;
use crate::manifest::{self, CrateFeatures};
use crate::model::{self, FileModel, Workspace};
use crate::report::Report;
use crate::{rules, semantic, wire};

/// Directory names never descended into: build output, VCS metadata,
/// vendored third-party shims (not held to PHY invariants), and the
/// lint's own deliberately-dirty test fixtures.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "shims", "fixtures", "node_modules"];

/// Run phylint over the workspace rooted at `root`.
///
/// `root` must contain a `Cargo.toml`. Every `.rs` file reachable
/// outside the skip list (`target/`, `.git/`, `shims/`, `fixtures/`)
/// is lexed and checked; the wire-format rule additionally
/// cross-checks `crates/transport` when present.
pub fn run(root: &Path) -> io::Result<Report> {
    if !root.join("Cargo.toml").is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no Cargo.toml", root.display()),
        ));
    }

    let mut manifests: BTreeMap<PathBuf, CrateFeatures> = BTreeMap::new();
    let mut rs_files: Vec<PathBuf> = Vec::new();
    walk(root, &mut manifests, &mut rs_files)?;
    rs_files.sort();

    let mut report = Report::default();

    // Lex and marker-parse every file up front: the semantic phase
    // needs the whole workspace before any cross-file rule can run.
    let mut fas: Vec<FileAnalysis> = Vec::new();
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for abs in &rs_files {
        let Ok(src) = fs::read_to_string(abs) else {
            continue; // non-UTF-8 or vanished mid-scan: not lintable
        };
        let rel = abs.strip_prefix(root).unwrap_or(abs).to_path_buf();
        let crate_dir = owning_crate(root, abs, &manifests);
        let kind = file_kind(&crate_dir, abs);
        fas.push(FileAnalysis::new(rel, src, kind));
        crate_dirs.push(crate_dir);
    }

    // Phase 1a: per-file token rules.
    let empty = CrateFeatures::default();
    for (fa, crate_dir) in fas.iter().zip(&crate_dirs) {
        rules::panic_path(fa, &mut report.findings);
        rules::alloc_hot(fa, &mut report.findings);
        rules::unsafe_safety(fa, &mut report.findings);
        let features = manifests.get(crate_dir).unwrap_or(&empty);
        rules::feature_gate(fa, features, &mut report.findings);
        report.findings.extend(fa.marker_findings.iter().cloned());
    }

    // Phase 1b: item model over crate source (tests/benches/examples
    // are not resolution targets — they may allocate freely and must
    // not pull production fns into the hot closure).
    let models: Vec<FileModel> = fas
        .iter()
        .enumerate()
        .filter(|(_, fa)| fa.kind == FileKind::CrateSrc)
        .map(|(i, fa)| model::extract(fa, i))
        .collect();
    let ws = Workspace::assemble(models);

    // Phase 2: semantic rules over the call graph.
    let cg = CallGraph::new(&ws);
    semantic::check(&ws, &cg, &fas, &mut report.findings);

    // Suppression accounting runs last so semantic findings can mark
    // their suppressions used before stale ones are flagged.
    for fa in &fas {
        fa.unused_suppression_findings(&mut report.findings);
        report.suppressions_used += fa
            .suppressions
            .iter()
            .filter(|s| s.used.get())
            .count();
        report.files_scanned += 1;
    }

    wire::check(root, &mut report.findings);
    report.sort();
    Ok(report)
}

/// Recursive directory walk collecting manifests and `.rs` files.
fn walk(
    dir: &Path,
    manifests: &mut BTreeMap<PathBuf, CrateFeatures>,
    rs_files: &mut Vec<PathBuf>,
) -> io::Result<()> {
    let manifest = dir.join("Cargo.toml");
    if manifest.is_file() {
        manifests.insert(dir.to_path_buf(), manifest::read_features(&manifest));
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, manifests, rs_files)?;
        } else if name.ends_with(".rs") {
            rs_files.push(path);
        }
    }
    Ok(())
}

/// Deepest ancestor directory of `file` holding a `Cargo.toml`.
fn owning_crate(
    root: &Path,
    file: &Path,
    manifests: &BTreeMap<PathBuf, CrateFeatures>,
) -> PathBuf {
    let mut dir = file.parent();
    while let Some(d) = dir {
        if manifests.contains_key(d) {
            return d.to_path_buf();
        }
        if d == root {
            break;
        }
        dir = d.parent();
    }
    root.to_path_buf()
}

/// Classify a file by its first path component under the owning
/// crate.
fn file_kind(crate_dir: &Path, file: &Path) -> FileKind {
    let rel = file.strip_prefix(crate_dir).unwrap_or(file);
    match rel.components().next() {
        Some(c) => match c.as_os_str().to_string_lossy().as_ref() {
            "tests" => FileKind::Test,
            "benches" => FileKind::Bench,
            "examples" => FileKind::Example,
            _ => FileKind::CrateSrc,
        },
        None => FileKind::CrateSrc,
    }
}
