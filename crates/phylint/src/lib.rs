//! `phylint` — an offline, dependency-free static-analysis pass that
//! enforces the PHY's design invariants as a CI gate.
//!
//! The codebase's core guarantees — zero-allocation steady state on
//! the per-symbol/per-chunk hot paths, typed [`PhyError`]s instead of
//! panics in the datapath, `unsafe` justified in place, feature names
//! that actually exist, and a wire format whose documentation matches
//! its constants — are design rules, not style preferences. This
//! crate machine-checks them.
//!
//! # Rules
//!
//! Token rules (per file, v1):
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `panic_path` | no `.unwrap()` / `.expect()` / `panic!` / `todo!` / `unimplemented!` in crate source outside tests; `[idx]` indexing additionally denied in `// phylint: datapath` modules |
//! | `alloc_hot` | no `vec!` / `format!` / `Vec::new` / `Vec::with_capacity` / `Box::new` / `String::…` / `.to_vec()` / `.to_owned()` / `.to_string()` / `.collect()` inside `// phylint: hot` … `// phylint: end-hot` regions |
//! | `unsafe_safety` | every `unsafe` carries a `// SAFETY:` comment on the same line or immediately above |
//! | `feature_gate` | every `feature = "name"` reference names a feature declared in the owning crate's `Cargo.toml` |
//! | `wire_format` | `crates/transport` frame constants (magic, control-frame size, type-byte range, header field widths) match the wire-format tables documented in its `lib.rs` |
//! | `marker` | phylint's own markers are well-formed and every suppression is used |
//!
//! Semantic rules (workspace call graph, v2 — see [`model`] and
//! [`callgraph`] for the approximation):
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `hot_transitive` | functions *reachable* from a `// phylint: hot` region (via the workspace call graph) are allocation-free, not just the literal region text; panic-freedom of reachable code is already guaranteed workspace-wide by `panic_path` |
//! | `simd_guard` | every `#[target_feature(enable = …)]` fn is declared `unsafe`, and each call site sits in a fn that is itself `#[target_feature]` or contains an `is_x86_feature_detected!` runtime guard |
//! | `lock_order` | `Mutex`/`RwLock` struct fields have a canonical rank (declaration order, files sorted by path); no call chain may acquire a lower-ranked lock while holding a higher-ranked one, or re-acquire a lock it already holds |
//! | `error_surface` | public `Result`-returning fns in crate source use typed errors (no `String` / `Box<dyn Error>` / `&str` / `()` payloads), and public `…Error` enums carry `#[non_exhaustive]` |
//!
//! Semantic findings carry the **call path** that proves them, and the
//! binary can emit the whole report as line-oriented JSON
//! (`--format json`) with a stable schema (see [`json`]).
//!
//! # Suppressions
//!
//! Findings are silenced in place, with a mandatory justification:
//!
//! ```text
//! // phylint: allow(panic_path) -- table built above with the same length
//! let row = table.last().expect("nonempty");
//! ```
//!
//! A standalone `allow` comment covers the next code line; a trailing
//! one covers its own line. An `allow` that matches no finding is
//! itself a `marker` error, so stale suppressions cannot accumulate.
//!
//! # Hot regions
//!
//! Wrap an allocation-free region in marker comments:
//!
//! ```text
//! // phylint: hot
//! fn process_symbol(&mut self) { … }
//! // phylint: end-hot
//! ```
//!
//! The walker scans every `.rs` file in the workspace except
//! `target/`, `crates/shims/` (vendored third-party stand-ins), and
//! `tests/fixtures/` (this crate's deliberately-broken inputs). The
//! binary exits non-zero when any finding survives suppression, which
//! is what makes it a CI gate.
//!
//! [`PhyError`]: https://docs.rs/mimo_core
//!
//! This crate deliberately has **zero dependencies** (std only) and
//! never touches the network.

pub mod analysis;
pub mod callgraph;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod report;
pub mod rules;
pub mod semantic;
pub mod wire;

pub use engine::run;
pub use report::{Finding, Report, RuleId, ALL_RULES};
