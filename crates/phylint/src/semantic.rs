//! Phase 2 of the workspace analyzer: the four semantic rules that
//! run over the assembled [`Workspace`] model and its [`CallGraph`].
//!
//! * `hot_transitive` — functions *reachable* from a
//!   `// phylint: hot` region must be allocation-free, not just the
//!   literal region text. Panic-freedom of reachable code is already
//!   guaranteed workspace-wide by the `panic_path` token rule (which
//!   covers all crate source, a strict superset of any reachability
//!   set), so this rule reports allocation sites only — one rule per
//!   defect, no double reports.
//! * `simd_guard` — every `#[target_feature(enable = …)]` fn must
//!   be declared `unsafe` (its `// SAFETY:` comment is enforced by the
//!   `unsafe_safety` token rule), and every call site must sit in a fn
//!   that is itself `#[target_feature]` or textually contains an
//!   `is_x86_feature_detected!` runtime guard. Dispatch that proves
//!   the feature at *construction* time instead needs a justified
//!   suppression spelling out the invariant.
//! * `lock_order` — lock fields have a canonical rank (declaration
//!   order, files sorted by path). While a guard is held, no lock of
//!   equal or lower rank may be acquired — directly, or transitively
//!   through any call made inside the guard's scope.
//! * `error_surface` — public `Result`-returning fns in crate
//!   source must use typed errors (no `String` / `Box<dyn Error>` /
//!   `&str` / `()` payloads), and public `…Error` enums must carry
//!   `#[non_exhaustive]`.
//!
//! Every cross-function finding carries the call path that proves it.
//! Findings land on a concrete source line and honour in-place
//! suppressions at that line, exactly like token-rule findings.

use std::collections::BTreeMap;

use crate::analysis::FileAnalysis;
use crate::callgraph::CallGraph;
use crate::model::{FnId, Workspace};
use crate::report::{Finding, RuleId};

/// Run all four semantic rules. `files` is the engine's full analysis
/// list; `FnItem::file` indexes into it.
pub fn check(
    ws: &Workspace,
    cg: &CallGraph<'_>,
    files: &[FileAnalysis],
    out: &mut Vec<Finding>,
) {
    hot_transitive(ws, cg, files, out);
    simd_guard(ws, cg, files, out);
    lock_order(ws, cg, files, out);
    error_surface(ws, files, out);
}

/// Push a semantic finding through the landing file's suppression
/// filter.
fn emit(
    files: &[FileAnalysis],
    out: &mut Vec<Finding>,
    rule: RuleId,
    file: usize,
    line: u32,
    msg: String,
    call_path: Vec<String>,
) {
    files[file].push_finding_with_path(out, rule, line, msg, call_path);
}

/// Allocation sites in any function reachable from a hot-region call
/// site. The literal region text is already covered by `alloc_hot`,
/// so sites that themselves sit inside a hot region are skipped here.
fn hot_transitive(
    ws: &Workspace,
    cg: &CallGraph<'_>,
    files: &[FileAnalysis],
    out: &mut Vec<Finding>,
) {
    let paths: Vec<std::path::PathBuf> = files.iter().map(|f| f.path.clone()).collect();
    let mut roots: Vec<(FnId, &crate::model::CallSite)> = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        for call in &f.calls {
            if call.in_hot_region {
                roots.push((id, call));
            }
        }
    }
    let reached = cg.reach(&roots);
    for (&id, hops) in &reached {
        let f = &ws.fns[id];
        let rendered = cg.render_path(&paths, hops);
        for site in &f.alloc_sites {
            if files[f.file].in_hot_region(site.line) {
                continue; // alloc_hot already owns this site
            }
            emit(
                files,
                out,
                RuleId::HotTransitive,
                f.file,
                site.line,
                format!(
                    "allocation (`{}`) in `{}`, which is reachable from a \
                     `phylint: hot` region",
                    site.what,
                    f.display_name()
                ),
                rendered.clone(),
            );
        }
    }
}

/// `#[target_feature]` declaration and call-site soundness.
fn simd_guard(
    ws: &Workspace,
    cg: &CallGraph<'_>,
    files: &[FileAnalysis],
    out: &mut Vec<Finding>,
) {
    let paths: Vec<std::path::PathBuf> = files.iter().map(|f| f.path.clone()).collect();
    // Declaration check: a target_feature fn that is not `unsafe`
    // hides its precondition from callers.
    for f in &ws.fns {
        let Some(feat) = &f.target_feature else {
            continue;
        };
        if !f.is_unsafe {
            emit(
                files,
                out,
                RuleId::SimdGuard,
                f.file,
                f.line,
                format!(
                    "`{}` is #[target_feature(enable = \"{feat}\")] but not \
                     declared `unsafe fn` — callers must see the CPU-feature \
                     precondition",
                    f.display_name()
                ),
                Vec::new(),
            );
        }
    }
    // Call-site check: the enclosing fn must prove the feature — by
    // being target_feature itself, or by containing a runtime
    // `is_x86_feature_detected!` guard.
    for (id, caller) in ws.fns.iter().enumerate() {
        if caller.cfg_test {
            continue;
        }
        for call in &caller.calls {
            for callee_id in cg.resolve(caller, call) {
                let callee = &ws.fns[callee_id];
                let Some(feat) = &callee.target_feature else {
                    continue;
                };
                if caller.target_feature.is_some() || caller.has_feature_guard {
                    continue;
                }
                let call_path = cg.render_path(
                    &paths,
                    &[crate::callgraph::Hop {
                        caller: id,
                        line: call.line,
                        callee: callee_id,
                    }],
                );
                emit(
                    files,
                    out,
                    RuleId::SimdGuard,
                    caller.file,
                    call.line,
                    format!(
                        "`{}` calls #[target_feature(enable = \"{feat}\")] fn \
                         `{}` without an `is_x86_feature_detected!` guard in \
                         scope — dispatch guarded elsewhere needs a justified \
                         suppression stating the invariant",
                        caller.display_name(),
                        callee.display_name()
                    ),
                    call_path,
                );
            }
        }
    }
}

/// A witness that some fn (transitively) acquires a lock field: the
/// call hops from that fn down to the acquiring fn, plus the
/// acquisition line.
#[derive(Clone)]
struct LockWitness {
    hops: Vec<crate::callgraph::Hop>,
    acquirer: FnId,
    line: u32,
}

/// Canonical-order audit over direct and call-transitive acquisitions.
fn lock_order(
    ws: &Workspace,
    cg: &CallGraph<'_>,
    files: &[FileAnalysis],
    out: &mut Vec<Finding>,
) {
    if ws.lock_fields.is_empty() {
        return;
    }
    let paths: Vec<std::path::PathBuf> = files.iter().map(|f| f.path.clone()).collect();
    let lock_name = |rank: usize| {
        let lf = &ws.lock_fields[rank];
        format!("{}.{}", lf.struct_name, lf.name)
    };

    // Resolve every call once: fn → [(line, callees)].
    let edges: Vec<Vec<(u32, Vec<FnId>)>> = ws
        .fns
        .iter()
        .map(|f| {
            f.calls
                .iter()
                .map(|c| (c.line, cg.resolve(f, c)))
                .collect()
        })
        .collect();

    // Fixpoint lock closure: rank → first witness, per fn.
    let mut closure: Vec<BTreeMap<usize, LockWitness>> = ws
        .fns
        .iter()
        .enumerate()
        .map(|(id, f)| {
            f.locks
                .iter()
                .map(|l| {
                    (
                        l.field,
                        LockWitness {
                            hops: Vec::new(),
                            acquirer: id,
                            line: l.line,
                        },
                    )
                })
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            for (line, callees) in &edges[id] {
                for &callee in callees {
                    if callee == id {
                        continue;
                    }
                    let add: Vec<(usize, LockWitness)> = closure[callee]
                        .iter()
                        .filter(|(rank, _)| !closure[id].contains_key(rank))
                        .map(|(rank, w)| {
                            let mut hops = vec![crate::callgraph::Hop {
                                caller: id,
                                line: *line,
                                callee,
                            }];
                            hops.extend(w.hops.iter().cloned());
                            (
                                *rank,
                                LockWitness {
                                    hops,
                                    acquirer: w.acquirer,
                                    line: w.line,
                                },
                            )
                        })
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        closure[id].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per-fn scan: while a guard is held, no equal-or-lower rank may
    // be acquired, directly or through a call.
    for (id, f) in ws.fns.iter().enumerate() {
        if f.cfg_test {
            continue;
        }
        let mut seen: Vec<(usize, usize)> = Vec::new(); // (held, acquired) pairs reported
        // Direct-vs-direct.
        for b in &f.locks {
            for a in &f.locks {
                if a.ord >= b.ord || b.line > a.scope_end_line {
                    continue; // a not held at b
                }
                if b.field > a.field || seen.contains(&(a.field, b.field)) {
                    continue;
                }
                seen.push((a.field, b.field));
                let msg = if a.field == b.field {
                    format!(
                        "`{}` re-acquires `{}` (locked at line {}) while the \
                         first guard is still held — self-deadlock",
                        f.display_name(),
                        lock_name(a.field),
                        a.line
                    )
                } else {
                    format!(
                        "`{}` acquires `{}` (rank {}) while holding `{}` \
                         (rank {}, locked at line {}) — violates the canonical \
                         lock order (declaration order, files sorted by path)",
                        f.display_name(),
                        lock_name(b.field),
                        b.field,
                        lock_name(a.field),
                        a.field,
                        a.line
                    )
                };
                emit(files, out, RuleId::LockOrder, f.file, b.line, msg, Vec::new());
            }
        }
        // Direct-vs-transitive: calls made inside a guard's scope.
        for (line, callees) in &edges[id] {
            for a in &f.locks {
                if *line < a.line || *line > a.scope_end_line {
                    continue; // guard not held at this call
                }
                for &callee in callees {
                    for (&rank, w) in &closure[callee] {
                        if rank > a.field || seen.contains(&(a.field, rank)) {
                            continue;
                        }
                        seen.push((a.field, rank));
                        let mut hops = vec![crate::callgraph::Hop {
                            caller: id,
                            line: *line,
                            callee,
                        }];
                        hops.extend(w.hops.iter().cloned());
                        let rendered = cg.render_path(&paths, &hops);
                        let msg = if rank == a.field {
                            format!(
                                "`{}` holds `{}` (locked at line {}) across a \
                                 call chain that re-acquires it in `{}` (line \
                                 {}) — self-deadlock",
                                f.display_name(),
                                lock_name(a.field),
                                a.line,
                                ws.fns[w.acquirer].display_name(),
                                w.line
                            )
                        } else {
                            format!(
                                "`{}` holds `{}` (rank {}, locked at line {}) \
                                 across a call chain that acquires `{}` (rank \
                                 {}) in `{}` (line {}) — violates the \
                                 canonical lock order",
                                f.display_name(),
                                lock_name(a.field),
                                a.field,
                                a.line,
                                lock_name(rank),
                                rank,
                                ws.fns[w.acquirer].display_name(),
                                w.line
                            )
                        };
                        emit(files, out, RuleId::LockOrder, f.file, *line, msg, rendered);
                    }
                }
            }
        }
    }
}

/// Error-type tokens that make a public `Result` stringly or opaque.
fn stringly(err_tokens: &str) -> Option<&'static str> {
    let toks: Vec<&str> = err_tokens.split_whitespace().collect();
    if toks.is_empty() || toks == ["(", ")"] {
        return Some("`()`");
    }
    if toks.contains(&"String") {
        return Some("`String`");
    }
    if toks.contains(&"str") {
        return Some("`&str`");
    }
    if err_tokens.contains("Box < dyn") {
        return Some("`Box<dyn …>`");
    }
    None
}

/// Public error-surface audit: typed payloads and `#[non_exhaustive]`
/// on public error enums.
fn error_surface(ws: &Workspace, files: &[FileAnalysis], out: &mut Vec<Finding>) {
    for f in &ws.fns {
        if !f.is_pub || f.cfg_test {
            continue;
        }
        let Some(err) = &f.result_err else {
            continue;
        };
        if let Some(what) = stringly(err) {
            // Squish token gaps, keeping the one after `dyn`.
            let compact: String = err
                .split_whitespace()
                .map(|t| if t == "dyn" { "dyn " } else { t })
                .collect();
            emit(
                files,
                out,
                RuleId::ErrorSurface,
                f.file,
                f.line,
                format!(
                    "public fn `{}` returns `Result<_, {compact}>` — use a \
                     typed error ({what} is not matchable by callers)",
                    f.display_name(),
                ),
                Vec::new(),
            );
        }
    }
    for e in &ws.error_enums {
        if !e.non_exhaustive {
            emit(
                files,
                out,
                RuleId::ErrorSurface,
                e.file,
                e.line,
                format!(
                    "public error enum `{}` is missing `#[non_exhaustive]` — \
                     adding a variant would be a breaking change",
                    e.name
                ),
                Vec::new(),
            );
        }
    }
}
