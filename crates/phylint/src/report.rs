//! Rule identifiers, findings, and the machine-readable report.

use std::fmt;
use std::path::PathBuf;

/// The rule a finding belongs to. Every rule can be suppressed in
/// place with `// phylint: allow(<rule>) -- <reason>` except
/// [`RuleId::Marker`], which polices the marker comments themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Panic-path audit: `unwrap`/`expect`/`panic!`/`todo!`/
    /// `unimplemented!` (and `[idx]` in `datapath`-marked modules)
    /// outside test code.
    PanicPath,
    /// Allocation inside a `// phylint: hot` region.
    AllocHot,
    /// Allocation in a function transitively reachable from a
    /// `// phylint: hot` region via the workspace call graph.
    HotTransitive,
    /// `unsafe` without an immediately preceding `// SAFETY:` comment.
    UnsafeSafety,
    /// `#[target_feature]` soundness: such fns must be `unsafe`, and
    /// their call sites must sit in runtime-feature-guarded (or
    /// equally gated) dispatch functions.
    SimdGuard,
    /// Locks acquired against the canonical declaration order, or the
    /// same lock acquired twice along one call chain.
    LockOrder,
    /// Public `Result` APIs with stringly error payloads, or public
    /// error enums missing `#[non_exhaustive]`.
    ErrorSurface,
    /// `cfg(feature = "…")` naming a feature the owning crate does
    /// not declare.
    FeatureGate,
    /// Wire-format constants diverging from the documented tables.
    WireFormat,
    /// Malformed/unused phylint markers and suppressions.
    Marker,
}

/// All rules, in report order.
pub const ALL_RULES: [RuleId; 10] = [
    RuleId::PanicPath,
    RuleId::AllocHot,
    RuleId::HotTransitive,
    RuleId::UnsafeSafety,
    RuleId::SimdGuard,
    RuleId::LockOrder,
    RuleId::ErrorSurface,
    RuleId::FeatureGate,
    RuleId::WireFormat,
    RuleId::Marker,
];

impl RuleId {
    /// Stable machine name, as used in `allow(...)` suppressions.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::PanicPath => "panic_path",
            RuleId::AllocHot => "alloc_hot",
            RuleId::HotTransitive => "hot_transitive",
            RuleId::UnsafeSafety => "unsafe_safety",
            RuleId::SimdGuard => "simd_guard",
            RuleId::LockOrder => "lock_order",
            RuleId::ErrorSurface => "error_surface",
            RuleId::FeatureGate => "feature_gate",
            RuleId::WireFormat => "wire_format",
            RuleId::Marker => "marker",
        }
    }

    /// Parse a rule name as written in an `allow(...)` suppression.
    pub fn parse(name: &str) -> Option<RuleId> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Violated rule.
    pub rule: RuleId,
    /// Path relative to the scanned root.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
    /// For semantic (call-graph) rules: the chain of functions that
    /// proves reachability, root first. Empty for per-file findings.
    pub call_path: Vec<String>,
}

impl Finding {
    /// A per-file finding with no call path.
    pub fn new(rule: RuleId, path: PathBuf, line: u32, msg: String) -> Finding {
        Finding {
            rule,
            path,
            line,
            msg,
            call_path: Vec::new(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.msg
        )?;
        if !self.call_path.is_empty() {
            write!(f, "\n    call path: {}", self.call_path.join("\n            -> "))?;
        }
        Ok(())
    }
}

/// Full result of a phylint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of suppressions honoured (matched at least one would-be
    /// finding).
    pub suppressions_used: usize,
}

impl Report {
    /// Findings per rule, in [`ALL_RULES`] order.
    pub fn counts(&self) -> [(RuleId, usize); ALL_RULES.len()] {
        let mut out = ALL_RULES.map(|r| (r, 0usize));
        for f in &self.findings {
            for slot in &mut out {
                if slot.0 == f.rule {
                    slot.1 += 1;
                }
            }
        }
        out
    }

    /// True when the run found nothing.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Count of findings for one rule.
    pub fn count(&self, rule: RuleId) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// One-line machine-readable summary (JSON object, stable key
    /// order) for CI log diffing.
    pub fn json_summary(&self) -> String {
        let mut s = String::from("{");
        for (rule, n) in self.counts() {
            s.push_str(&format!("\"{}\":{},", rule.name(), n));
        }
        s.push_str(&format!(
            "\"files_scanned\":{},\"suppressions_used\":{}}}",
            self.files_scanned, self.suppressions_used
        ));
        s
    }

    /// Sort findings by path then line then rule for stable output.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }
}
