//! CLI entry point:
//! `cargo run -p phylint --release [-- --root DIR --format json --out FILE]`.
//!
//! Human format prints every finding as `path:line: [rule] message`
//! (semantic findings append their proving call path), then a
//! per-rule count block and a one-line JSON summary for CI log
//! diffing. `--format json` emits the full stable-schema report (see
//! `phylint::json`) instead; `--out FILE` writes the chosen format to
//! a file *in addition to* stdout keeping the human report, so CI can
//! archive machine findings without losing the log. Exit code
//! 0 = clean, 1 = findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

/// Output formats for the findings report.
enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Human;
    let mut out_file: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("phylint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "phylint: --format needs `human` or `json`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(f) => out_file = Some(PathBuf::from(f)),
                None => {
                    eprintln!("phylint: --out needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "phylint — static-analysis gate for the PHY's design invariants\n\
                     \n\
                     usage: phylint [--root DIR] [--format human|json] [--out FILE]\n\
                     \n\
                     Scans every .rs file under DIR (default: the current\n\
                     directory, which must hold a Cargo.toml) and reports\n\
                     violations of the token rules (panic-path, hot-allocation,\n\
                     unsafe-, feature- and wire-format) and the call-graph\n\
                     semantic rules (hot_transitive, simd_guard, lock_order,\n\
                     error_surface). --format json emits the stable schema-v1\n\
                     report; --out FILE additionally writes the JSON report to\n\
                     FILE while stdout keeps the human report. Exit 0 = clean."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("phylint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run -p phylint` the working directory is
    // the workspace root already; fall back to CARGO_MANIFEST_DIR's
    // grandparent so the binary also works from inside the crate.
    if !root.join("Cargo.toml").is_file() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest_dir).join("../..");
            if candidate.join("Cargo.toml").is_file() {
                root = candidate;
            }
        }
    }

    let report = match phylint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("phylint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &out_file {
        let json = phylint::json::report_to_json(&report);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("phylint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Json => {
            print!("{}", phylint::json::report_to_json(&report));
        }
        Format::Human => {
            for f in &report.findings {
                println!("{f}");
            }
            if !report.findings.is_empty() {
                println!();
            }
            for (rule, n) in report.counts() {
                println!("phylint: {:<15} {} finding(s)", format!("{rule}:"), n);
            }
            println!(
                "phylint: scanned {} files, {} suppression(s) in use",
                report.files_scanned, report.suppressions_used
            );
            println!("phylint: summary {}", report.json_summary());
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
