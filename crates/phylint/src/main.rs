//! CLI entry point: `cargo run -p phylint --release [-- --root DIR]`.
//!
//! Prints every finding as `path:line: [rule] message`, then a
//! per-rule count block and a one-line JSON summary for CI log
//! diffing. Exit code 0 = clean, 1 = findings, 2 = usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("phylint: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "phylint — static-analysis gate for the PHY's design invariants\n\
                     \n\
                     usage: phylint [--root DIR]\n\
                     \n\
                     Scans every .rs file under DIR (default: the current\n\
                     directory, which must hold a Cargo.toml) and reports\n\
                     violations of the panic-path, hot-allocation, unsafe-,\n\
                     feature- and wire-format rules. Exit 0 = clean."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("phylint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // When invoked via `cargo run -p phylint` the working directory is
    // the workspace root already; fall back to CARGO_MANIFEST_DIR's
    // grandparent so the binary also works from inside the crate.
    if !root.join("Cargo.toml").is_file() {
        if let Ok(manifest_dir) = std::env::var("CARGO_MANIFEST_DIR") {
            let candidate = PathBuf::from(manifest_dir).join("../..");
            if candidate.join("Cargo.toml").is_file() {
                root = candidate;
            }
        }
    }

    let report = match phylint::run(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("phylint: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{f}");
    }
    if !report.findings.is_empty() {
        println!();
    }
    for (rule, n) in report.counts() {
        println!("phylint: {:<13} {} finding(s)", format!("{rule}:"), n);
    }
    println!(
        "phylint: scanned {} files, {} suppression(s) in use",
        report.files_scanned, report.suppressions_used
    );
    println!("phylint: summary {}", report.json_summary());

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
