//! Per-file analysis context: lexes a file and extracts the phylint
//! marker comments (`hot` regions, `datapath` flag, suppressions),
//! plus the `#[cfg(test)]` item spans that the panic-path rule must
//! skip.

use std::cell::Cell;
use std::path::PathBuf;

use crate::lexer::{self, Comment, Lexed, TokKind, Token};
use crate::report::{Finding, RuleId};

/// Which kind of target a source file belongs to. Rules use this to
/// scope themselves: the panic-path audit only fires on crate source
/// proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` of some crate: datapath code, all rules apply.
    CrateSrc,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// An in-place suppression:
/// `// phylint: allow(<rule>) -- <reason>`.
#[derive(Debug)]
pub struct Suppression {
    /// Rule being suppressed.
    pub rule: RuleId,
    /// First covered line (the marker's own line).
    pub from_line: u32,
    /// Last covered line: the marker line itself for a trailing
    /// comment, or the next code line for a standalone comment.
    pub to_line: u32,
    /// Line the marker comment sits on (for diagnostics).
    pub decl_line: u32,
    /// Set when the suppression absorbed at least one finding.
    pub used: Cell<bool>,
}

/// A fully lexed and marker-parsed source file, ready for the rules.
#[derive(Debug)]
pub struct FileAnalysis {
    /// Path relative to the scanned root.
    pub path: PathBuf,
    /// File contents.
    pub src: String,
    /// Token/comment streams.
    pub lexed: Lexed,
    /// Target kind (crate source, test, bench, example).
    pub kind: FileKind,
    /// Byte spans of `#[cfg(test)]` items (test modules/functions
    /// inside crate source).
    pub test_spans: Vec<(usize, usize)>,
    /// Inclusive line ranges bracketed by `// phylint: hot` …
    /// `// phylint: end-hot`.
    pub hot_regions: Vec<(u32, u32)>,
    /// File opted into the strict datapath profile
    /// (`// phylint: datapath`): `[idx]` indexing is denied too.
    pub datapath: bool,
    /// In-place suppressions found in the file.
    pub suppressions: Vec<Suppression>,
    /// Marker-syntax findings produced while parsing (malformed
    /// markers, unterminated hot regions).
    pub marker_findings: Vec<Finding>,
}

impl FileAnalysis {
    /// Lex and parse markers for one file.
    pub fn new(path: PathBuf, src: String, kind: FileKind) -> FileAnalysis {
        let lexed = lexer::lex(&src);
        let mut fa = FileAnalysis {
            path,
            src,
            lexed,
            kind,
            test_spans: Vec::new(),
            hot_regions: Vec::new(),
            datapath: false,
            suppressions: Vec::new(),
            marker_findings: Vec::new(),
        };
        fa.parse_markers();
        fa.find_test_spans();
        fa
    }

    /// True when `line` falls inside a `phylint: hot` region.
    pub fn in_hot_region(&self, line: u32) -> bool {
        self.hot_regions
            .iter()
            .any(|&(from, to)| (from..=to).contains(&line))
    }

    /// True when the byte offset falls inside a `#[cfg(test)]` item.
    pub fn in_test_span(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(from, to)| (from..to).contains(&offset))
    }

    /// Record a finding at `line` unless a suppression covers it; a
    /// matching suppression is marked used either way.
    pub fn push_finding(
        &self,
        out: &mut Vec<Finding>,
        rule: RuleId,
        line: u32,
        msg: String,
    ) {
        self.push_finding_with_path(out, rule, line, msg, Vec::new());
    }

    /// Like [`push_finding`](Self::push_finding) but attaches the call
    /// path that proves a semantic finding. Suppressions at the
    /// *landing* line (where the finding is reported) absorb semantic
    /// findings, same as token findings.
    pub fn push_finding_with_path(
        &self,
        out: &mut Vec<Finding>,
        rule: RuleId,
        line: u32,
        msg: String,
        call_path: Vec<String>,
    ) {
        for s in &self.suppressions {
            if s.rule == rule && (s.from_line..=s.to_line).contains(&line) {
                s.used.set(true);
                return;
            }
        }
        out.push(Finding {
            rule,
            path: self.path.clone(),
            line,
            msg,
            call_path,
        });
    }

    /// Findings for suppressions that never matched anything: a stale
    /// `allow` is itself an error, so suppressions cannot rot.
    pub fn unused_suppression_findings(&self, out: &mut Vec<Finding>) {
        for s in &self.suppressions {
            if !s.used.get() {
                out.push(Finding::new(
                    RuleId::Marker,
                    self.path.clone(),
                    s.decl_line,
                    format!(
                        "unused suppression: allow({}) matched no finding — remove it",
                        s.rule.name()
                    ),
                ));
            }
        }
    }

    /// Parse every `phylint:` marker comment in the file.
    fn parse_markers(&mut self) {
        let mut open_hot: Option<u32> = None;
        let mut findings = Vec::new();
        let mut regions = Vec::new();
        let mut suppressions = Vec::new();

        for c in &self.lexed.comments {
            let text = lexer::comment_text(&self.src, c);
            let Some(idx) = text.find("phylint:") else {
                continue;
            };
            // Only honour markers in plain comments, near the comment
            // opener — `phylint:` deep inside prose is not a marker.
            let directive = text[idx + "phylint:".len()..].trim();
            let head = text[..idx].trim_start_matches('/').trim();
            if !head.is_empty() {
                continue;
            }
            match parse_directive(directive) {
                Directive::Hot => {
                    if open_hot.is_some() {
                        findings.push(self.marker_finding(
                            c.line,
                            "nested `phylint: hot` — close the previous region with \
                             `phylint: end-hot` first"
                                .to_string(),
                        ));
                    } else {
                        open_hot = Some(c.line);
                    }
                }
                Directive::EndHot => match open_hot.take() {
                    Some(from) => regions.push((from, c.line)),
                    None => findings.push(self.marker_finding(
                        c.line,
                        "`phylint: end-hot` without a matching `phylint: hot`".to_string(),
                    )),
                },
                Directive::Datapath => self.datapath = true,
                Directive::Allow { rule, reason_ok } => match (rule, reason_ok) {
                    (Some(rule), true) => {
                        let to_line = if c.own_line {
                            // Standalone comment: covers the next line.
                            self.next_code_line(c).unwrap_or(c.end_line)
                        } else {
                            // Trailing comment: covers its own line.
                            c.line
                        };
                        suppressions.push(Suppression {
                            rule,
                            from_line: c.line,
                            to_line,
                            decl_line: c.line,
                            used: Cell::new(false),
                        });
                    }
                    (None, _) => findings.push(self.marker_finding(
                        c.line,
                        format!("unknown rule in suppression: `{directive}`"),
                    )),
                    (Some(_), false) => findings.push(self.marker_finding(
                        c.line,
                        "suppression without a justification — write \
                         `phylint: allow(<rule>) -- <reason>`"
                            .to_string(),
                    )),
                },
                Directive::Unknown => findings.push(self.marker_finding(
                    c.line,
                    format!("unrecognised phylint marker: `{directive}`"),
                )),
            }
        }

        if let Some(from) = open_hot {
            findings.push(self.marker_finding(
                from,
                "`phylint: hot` region never closed — add `phylint: end-hot`".to_string(),
            ));
            // Treat the unterminated region as running to EOF so the
            // alloc rule still applies while the author fixes it.
            regions.push((from, u32::MAX));
        }

        self.hot_regions = regions;
        self.suppressions = suppressions;
        self.marker_findings = findings;
    }

    fn marker_finding(&self, line: u32, msg: String) -> Finding {
        Finding::new(RuleId::Marker, self.path.clone(), line, msg)
    }

    /// First line after comment `c` that holds a token (the line a
    /// standalone suppression comment applies to). Intervening
    /// comment-only lines are skipped so a suppression may sit above
    /// a doc comment.
    fn next_code_line(&self, c: &Comment) -> Option<u32> {
        self.lexed
            .tokens
            .iter()
            .map(|t| t.line)
            .find(|&l| l > c.end_line)
    }

    /// Locate `#[cfg(test)]` attributes and span the item that
    /// follows each (a `mod … { … }` block, a function, or a
    /// semicolon-terminated item), so the panic-path rule can ignore
    /// unit tests embedded in crate source.
    fn find_test_spans(&mut self) {
        let toks = &self.lexed.tokens;
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            if let Some(after_attr) = match_cfg_test(&self.src, toks, i) {
                let start = toks[i].start;
                let end = item_end(&self.src, toks, after_attr);
                spans.push((start, end));
                // Continue scanning after the item: nested cfg(test)
                // inside is already covered.
                i = after_attr;
                while i < toks.len() && toks[i].start < end {
                    i += 1;
                }
                continue;
            }
            i += 1;
        }
        self.test_spans = spans;
    }
}

/// A parsed `phylint:` directive.
enum Directive {
    Hot,
    EndHot,
    Datapath,
    Allow {
        rule: Option<RuleId>,
        reason_ok: bool,
    },
    Unknown,
}

fn parse_directive(directive: &str) -> Directive {
    // Normalise a possible block-comment tail (`… */`).
    let directive = directive.trim_end_matches("*/").trim();
    match directive {
        "hot" => return Directive::Hot,
        "end-hot" => return Directive::EndHot,
        "datapath" => return Directive::Datapath,
        _ => {}
    }
    if let Some(rest) = directive.strip_prefix("allow(") {
        let Some((name, tail)) = rest.split_once(')') else {
            return Directive::Allow {
                rule: None,
                reason_ok: false,
            };
        };
        let rule = RuleId::parse(name.trim());
        let reason_ok = tail
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|r| !r.trim().is_empty());
        return Directive::Allow { rule, reason_ok };
    }
    Directive::Unknown
}

/// If tokens at `i` spell `#[cfg(test)]` (optionally
/// `#[cfg(all(test, …))]` etc. — any cfg attribute whose argument
/// list contains the bare ident `test`), return the index of the
/// first token after the closing `]`.
fn match_cfg_test(src: &str, toks: &[Token], i: usize) -> Option<usize> {
    if tok_text(src, toks, i)? != "#" {
        return None;
    }
    if tok_text(src, toks, i + 1)? != "[" {
        return None;
    }
    if tok_text(src, toks, i + 2)? != "cfg" {
        return None;
    }
    if tok_text(src, toks, i + 3)? != "(" {
        return None;
    }
    // Scan the attribute body up to the matching `]`, looking for a
    // bare `test` ident. A `test` inside `not(…)` gates *non*-test
    // code and must not count, so `not` groups are skipped whole.
    let mut depth = 1usize; // depth of `[`
    let mut saw_test = false;
    let mut j = i + 4;
    while j < toks.len() {
        let text = tok_text(src, toks, j)?;
        match text {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return if saw_test { Some(j + 1) } else { None };
                }
            }
            "not" if toks[j].kind == TokKind::Ident
                && tok_text(src, toks, j + 1) == Some("(") =>
            {
                // Skip to the matching close paren of the not() group.
                let mut paren = 0usize;
                j += 1;
                while j < toks.len() {
                    match tok_text(src, toks, j)? {
                        "(" => paren += 1,
                        ")" => {
                            paren -= 1;
                            if paren == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            "test" if toks[j].kind == TokKind::Ident => saw_test = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Byte offset just past the item starting at token `i`: the matching
/// close brace of its first `{ … }` block, or the first `;` at
/// nesting depth zero (attributes and the item header pass through
/// untouched — they contain neither braces nor top-level semicolons
/// in the grammar subset this tool faces, except `#[…]` brackets,
/// which hold no braces).
fn item_end(src: &str, toks: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    for t in toks.iter().skip(i) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match src.get(t.start..t.end) {
            Some("{") => depth += 1,
            Some("}") => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return t.end;
                }
            }
            Some(";") if depth == 0 => return t.end,
            _ => {}
        }
    }
    toks.last().map(|t| t.end).unwrap_or(0)
}

fn tok_text<'a>(src: &'a str, toks: &[Token], i: usize) -> Option<&'a str> {
    let t = toks.get(i)?;
    src.get(t.start..t.end)
}
