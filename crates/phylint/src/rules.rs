//! The token-stream rules: panic-path audit, hot-region allocation
//! audit, `unsafe` hygiene, and feature-gate hygiene. Each rule walks
//! the flat token stream of one [`FileAnalysis`] and reports findings
//! through the file's suppression filter.

use crate::analysis::{FileAnalysis, FileKind};
use crate::lexer::{comment_text, TokKind, Token};
use crate::manifest::CrateFeatures;
use crate::report::{Finding, RuleId};

/// Keywords after which a `[` opens an array/slice literal or type,
/// never an index expression.
const NON_POSTFIX_KEYWORDS: [&str; 18] = [
    "as", "box", "break", "const", "dyn", "else", "in", "impl", "let", "match", "mut", "ref",
    "return", "static", "unsafe", "use", "where", "yield",
];

fn text<'a>(fa: &'a FileAnalysis, tok: &Token) -> &'a str {
    fa.src.get(tok.start..tok.end).unwrap_or("")
}

fn is(fa: &FileAnalysis, i: usize, what: &str) -> bool {
    fa.lexed
        .tokens
        .get(i)
        .is_some_and(|t| text(fa, t) == what)
}

/// Panic-path audit. In crate source (not tests/benches/examples, not
/// `#[cfg(test)]` items): no `.unwrap()`, `.expect(…)`, `panic!`,
/// `todo!`, `unimplemented!`. In modules additionally marked
/// `// phylint: datapath`, `[idx]` index expressions are denied too
/// (indexing panics on out-of-bounds; the strict profile demands
/// iterator/`get` access instead).
pub fn panic_path(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if fa.kind != FileKind::CrateSrc {
        return;
    }
    let toks = &fa.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if fa.in_test_span(tok.start) {
            continue;
        }
        match tok.kind {
            TokKind::Ident => {
                let name = text(fa, tok);
                match name {
                    "unwrap" | "expect" => {
                        let postfix = i > 0 && is(fa, i - 1, ".");
                        let called = is(fa, i + 1, "(");
                        if postfix && called {
                            fa.push_finding(
                                out,
                                RuleId::PanicPath,
                                tok.line,
                                format!(
                                    ".{name}() in datapath code — return a typed error \
                                     (PhyError) or justify with `phylint: allow(panic_path)`"
                                ),
                            );
                        }
                    }
                    "panic" | "todo" | "unimplemented" if is(fa, i + 1, "!") => {
                        fa.push_finding(
                            out,
                            RuleId::PanicPath,
                            tok.line,
                            format!("{name}! in datapath code — no panic paths"),
                        );
                    }
                    _ => {}
                }
            }
            TokKind::Punct if fa.datapath && text(fa, tok) == "[" => {
                // Postfix `[` = index expression: previous token ends
                // an operand (identifier, `)`, `]`, or a literal).
                let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
                    continue;
                };
                let postfix = match prev.kind {
                    TokKind::Ident => !NON_POSTFIX_KEYWORDS.contains(&text(fa, prev)),
                    TokKind::Punct => matches!(text(fa, prev), ")" | "]"),
                    TokKind::Number | TokKind::Str | TokKind::Char => true,
                    TokKind::Lifetime => false,
                };
                if postfix {
                    fa.push_finding(
                        out,
                        RuleId::PanicPath,
                        tok.line,
                        "[idx] indexing in a `phylint: datapath` module — use \
                         `.get(..)`/iterators, or justify with `phylint: allow(panic_path)`"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Names that allocate, denied inside `// phylint: hot` regions.
/// The list is deliberately the one from the zero-allocation
/// steady-state contract: constructors that take heap memory on the
/// per-symbol / per-chunk path.
pub fn alloc_hot(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    if fa.hot_regions.is_empty() {
        return;
    }
    let toks = &fa.lexed.tokens;
    let deny = |out: &mut Vec<Finding>, line: u32, what: &str| {
        fa.push_finding(
            out,
            RuleId::AllocHot,
            line,
            format!(
                "{what} inside a `phylint: hot` region — hot paths are \
                 zero-allocation; reuse workspace buffers"
            ),
        );
    };
    for (i, tok) in toks.iter().enumerate() {
        if !fa.in_hot_region(tok.line) || tok.kind != TokKind::Ident {
            continue;
        }
        let name = text(fa, tok);
        match name {
            "vec" | "format" if is(fa, i + 1, "!") => {
                deny(out, tok.line, &format!("{name}!"));
            }
            "Vec" | "Box"
                if is(fa, i + 1, ":")
                    && is(fa, i + 2, ":")
                    && toks
                        .get(i + 3)
                        .is_some_and(|t| matches!(text(fa, t), "new" | "with_capacity")) =>
            {
                let ctor = text(fa, &toks[i + 3]);
                deny(out, tok.line, &format!("{name}::{ctor}"));
            }
            "String" if is(fa, i + 1, ":") && is(fa, i + 2, ":") => {
                deny(out, tok.line, "String::…");
            }
            "to_vec" | "to_owned" | "to_string" | "collect" if i > 0 && is(fa, i - 1, ".") => {
                deny(out, tok.line, &format!(".{name}()"));
            }
            _ => {}
        }
    }
}

/// `unsafe` hygiene: every `unsafe` token must carry a `// SAFETY:`
/// comment — trailing on the same line, or in the contiguous comment
/// block immediately above.
pub fn unsafe_safety(fa: &FileAnalysis, out: &mut Vec<Finding>) {
    for tok in &fa.lexed.tokens {
        if tok.kind != TokKind::Ident || text(fa, tok) != "unsafe" {
            continue;
        }
        if has_safety_comment(fa, tok.line) {
            continue;
        }
        fa.push_finding(
            out,
            RuleId::UnsafeSafety,
            tok.line,
            "unsafe without a `// SAFETY:` comment immediately above".to_string(),
        );
    }
}

fn has_safety_comment(fa: &FileAnalysis, line: u32) -> bool {
    // Trailing comment on the same line?
    for c in &fa.lexed.comments {
        if (c.line..=c.end_line).contains(&line)
            && comment_text(&fa.src, c).contains("SAFETY:")
        {
            return true;
        }
    }
    // Walk the contiguous standalone-comment block upward from the
    // line above; attributes may not intervene (keep it strict).
    let mut want = line.saturating_sub(1);
    loop {
        let Some(c) = fa
            .lexed
            .comments
            .iter()
            .find(|c| c.own_line && c.end_line == want)
        else {
            return false;
        };
        if comment_text(&fa.src, c).contains("SAFETY:") {
            return true;
        }
        if c.line == 0 || c.line == 1 {
            return false;
        }
        want = c.line - 1;
    }
}

/// Feature-gate hygiene: every `feature = "name"` reference (inside
/// `cfg(…)` / `cfg_attr(…)` / `cfg!(…)` / `doc(cfg(…))`) must name a
/// feature the owning crate's `Cargo.toml` declares.
pub fn feature_gate(fa: &FileAnalysis, features: &CrateFeatures, out: &mut Vec<Finding>) {
    let toks = &fa.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::Ident || text(fa, tok) != "feature" {
            continue;
        }
        if !is(fa, i + 1, "=") {
            continue;
        }
        let Some(lit) = toks.get(i + 2).filter(|t| t.kind == TokKind::Str) else {
            continue;
        };
        let name = text(fa, lit).trim_matches('"');
        if features.contains(name) {
            continue;
        }
        fa.push_finding(
            out,
            RuleId::FeatureGate,
            tok.line,
            format!(
                "cfg(feature = \"{name}\") but the owning crate's Cargo.toml \
                 declares no such feature"
            ),
        );
    }
}
