//! Minimal `Cargo.toml` reading: just enough to learn which feature
//! names a crate declares, with zero dependencies.
//!
//! Declared features are the keys of the `[features]` table plus the
//! implicit feature Cargo creates for every `optional = true`
//! dependency. This deliberately ignores everything else in the
//! manifest.

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Feature names a crate declares (explicit `[features]` keys plus
/// implicit optional-dependency features).
#[derive(Debug, Default, Clone)]
pub struct CrateFeatures {
    names: BTreeSet<String>,
}

impl CrateFeatures {
    /// Whether `name` is a declared feature of the crate.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }

    /// Number of declared features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the crate declares no features.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Strip a trailing line comment that is not inside a string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Key of a `key = value` TOML line, unquoted, or `None`.
fn line_key(line: &str) -> Option<&str> {
    let (key, _) = line.split_once('=')?;
    let key = key.trim().trim_matches('"');
    if key.is_empty() {
        None
    } else {
        Some(key)
    }
}

/// Read the declared feature set from a `Cargo.toml`.
///
/// A manifest that cannot be read yields the empty set; the caller
/// reports missing-manifest conditions separately.
pub fn read_features(manifest: &Path) -> CrateFeatures {
    let Ok(text) = fs::read_to_string(manifest) else {
        return CrateFeatures::default();
    };
    let mut out = CrateFeatures::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).trim().to_string();
            // `[dependencies.foo]` style optional deps are handled
            // below when we see `optional = true` inside the section.
            continue;
        }
        if section == "features" {
            if let Some(key) = line_key(line) {
                out.names.insert(key.to_string());
            }
            continue;
        }
        let is_dep_section = section.ends_with("dependencies")
            || section
                .rsplit_once('.')
                .is_some_and(|(head, _)| head.ends_with("dependencies"));
        if is_dep_section {
            // Inline table: `foo = { …, optional = true }` declares
            // implicit feature `foo`.
            if line.contains("optional") && line.contains("true") {
                if let Some((_, dep)) = section.rsplit_once('.') {
                    if line_key(line) == Some("optional") {
                        out.names.insert(dep.to_string());
                        continue;
                    }
                }
                if let Some(key) = line_key(line) {
                    out.names.insert(key.to_string());
                }
            }
        }
    }
    out
}
