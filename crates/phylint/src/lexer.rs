//! A lightweight Rust lexer: just enough to classify source text into
//! tokens and comments with line spans, so the rule engine never
//! mistakes the contents of a string literal or a comment for code.
//!
//! The lexer understands the constructs that defeat naive regex
//! scanning:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte strings, C strings,
//! * raw strings with arbitrary hash fences (`r#"…"#`, `br##"…"##`),
//! * raw identifiers (`r#fn`) vs raw strings,
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * numeric literals including `0xC1` / `1_000` / `1.5e-3`.
//!
//! It does not build a syntax tree: rules pattern-match over the flat
//! token stream plus the comment list.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token with its byte range and 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexeme classification.
    pub kind: TokKind,
    /// Byte range `[start, end)` into the source.
    pub start: usize,
    /// End of the byte range.
    pub end: usize,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its placement.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte range `[start, end)` including the delimiters.
    pub start: usize,
    /// End of the byte range.
    pub end: usize,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// True when nothing but whitespace precedes the comment on its
    /// starting line (a standalone comment, not a trailing one).
    pub own_line: bool,
}

/// Lexer output: the token stream plus the comment list, both in
/// source order.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments.
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Text of a token within `src`.
    pub fn text<'a>(&self, src: &'a str, tok: &Token) -> &'a str {
        src.get(tok.start..tok.end).unwrap_or("")
    }
}

/// Text of a comment within `src`.
pub fn comment_text<'a>(src: &'a str, c: &Comment) -> &'a str {
    src.get(c.start..c.end).unwrap_or("")
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(c)
    }

    /// True when only whitespace lies between the current line start
    /// and `at`.
    fn only_ws_before(&self, at: usize) -> bool {
        self.src[self.line_start..at].chars().all(char::is_whitespace)
    }
}

/// Lex `src` into tokens and comments. The lexer is lenient: an
/// unterminated construct consumes to end of input rather than
/// erroring, so rule passes always see the whole file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let start = cur.pos;
        let line = cur.line;

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' {
            match cur.peek_at(1) {
                Some(b'/') => {
                    let own_line = cur.only_ws_before(start);
                    while let Some(n) = cur.peek() {
                        if n == '\n' {
                            break;
                        }
                        cur.bump();
                    }
                    out.comments.push(Comment {
                        start,
                        end: cur.pos,
                        line,
                        end_line: line,
                        own_line,
                    });
                    continue;
                }
                Some(b'*') => {
                    let own_line = cur.only_ws_before(start);
                    cur.bump();
                    cur.bump();
                    let mut depth = 1usize;
                    while depth > 0 {
                        match (cur.peek(), cur.peek_at(1)) {
                            (Some('/'), Some(b'*')) => {
                                depth += 1;
                                cur.bump();
                                cur.bump();
                            }
                            (Some('*'), Some(b'/')) => {
                                depth -= 1;
                                cur.bump();
                                cur.bump();
                            }
                            (Some(_), _) => {
                                cur.bump();
                            }
                            (None, _) => break,
                        }
                    }
                    out.comments.push(Comment {
                        start,
                        end: cur.pos,
                        line,
                        end_line: cur.line,
                        own_line,
                    });
                    continue;
                }
                _ => {}
            }
        }

        // Identifiers, keywords, and string-literal prefixes.
        if is_ident_start(c) {
            cur.bump();
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            let text = &src[start..cur.pos];
            // A handful of identifiers act as literal prefixes when
            // glued to a quote or hash fence: r"", b"", br"", c"",
            // cr"", b''.
            let next = cur.peek();
            let is_raw_prefix = matches!(text, "r" | "br" | "cr");
            let is_str_prefix = matches!(text, "b" | "c") && next == Some('"');
            let is_byte_char = text == "b" && next == Some('\'');
            if is_raw_prefix && (next == Some('"') || next == Some('#')) {
                if lex_raw_string(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokKind::Str,
                        start,
                        end: cur.pos,
                        line,
                    });
                    continue;
                }
                // `r#ident`: a raw identifier. Consume the hash and
                // the identifier body as one Ident token.
                if text == "r" && next == Some('#') {
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    start,
                    end: cur.pos,
                    line,
                });
                continue;
            }
            if is_str_prefix {
                lex_quoted(&mut cur, '"');
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    start,
                    end: cur.pos,
                    line,
                });
                continue;
            }
            if is_byte_char {
                lex_quoted(&mut cur, '\'');
                out.tokens.push(Token {
                    kind: TokKind::Char,
                    start,
                    end: cur.pos,
                    line,
                });
                continue;
            }
            out.tokens.push(Token {
                kind: TokKind::Ident,
                start,
                end: cur.pos,
                line,
            });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            cur.bump();
            loop {
                match cur.peek() {
                    Some(n) if is_ident_continue(n) => {
                        cur.bump();
                    }
                    // Decimal point: only when a digit follows, so
                    // `0..n` and `1.max(2)` terminate the number.
                    Some('.')
                        if cur
                            .peek_at(1)
                            .is_some_and(|b| b.is_ascii_digit()) =>
                    {
                        cur.bump();
                    }
                    // Exponent sign: `1e-3` / `1E+5`.
                    Some('+') | Some('-')
                        if matches!(
                            cur.bytes.get(cur.pos.wrapping_sub(1)),
                            Some(b'e') | Some(b'E')
                        ) && cur
                            .peek_at(1)
                            .is_some_and(|b| b.is_ascii_digit()) =>
                    {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            out.tokens.push(Token {
                kind: TokKind::Number,
                start,
                end: cur.pos,
                line,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            lex_quoted(&mut cur, '"');
            out.tokens.push(Token {
                kind: TokKind::Str,
                start,
                end: cur.pos,
                line,
            });
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            cur.bump();
            match cur.peek() {
                // Escape: definitely a char literal.
                Some('\\') => {
                    cur.bump();
                    cur.bump();
                    while let Some(n) = cur.peek() {
                        cur.bump();
                        if n == '\'' {
                            break;
                        }
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        start,
                        end: cur.pos,
                        line,
                    });
                }
                Some(n) if is_ident_start(n) => {
                    // `'a'` is a char; `'a` (no closing quote) is a
                    // lifetime or label.
                    cur.bump();
                    if cur.peek() == Some('\'') {
                        cur.bump();
                        out.tokens.push(Token {
                            kind: TokKind::Char,
                            start,
                            end: cur.pos,
                            line,
                        });
                    } else {
                        while cur.peek().is_some_and(is_ident_continue) {
                            cur.bump();
                        }
                        out.tokens.push(Token {
                            kind: TokKind::Lifetime,
                            start,
                            end: cur.pos,
                            line,
                        });
                    }
                }
                // `'('`, `' '`, etc: single non-ident char literal.
                Some(_) => {
                    cur.bump();
                    if cur.peek() == Some('\'') {
                        cur.bump();
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        start,
                        end: cur.pos,
                        line,
                    });
                }
                None => {
                    out.tokens.push(Token {
                        kind: TokKind::Punct,
                        start,
                        end: cur.pos,
                        line,
                    });
                }
            }
            continue;
        }

        // Everything else: one punctuation character per token.
        cur.bump();
        out.tokens.push(Token {
            kind: TokKind::Punct,
            start,
            end: cur.pos,
            line,
        });
    }

    out
}

/// Consume a quoted literal starting at the opening quote, honouring
/// backslash escapes. The cursor is positioned on the quote.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        if c == '\\' {
            cur.bump();
            cur.bump();
            continue;
        }
        cur.bump();
        if c == quote {
            break;
        }
    }
}

/// Try to consume a raw string body (`#…#"…"#…#`) starting at either
/// the opening quote or the first hash. Returns false (consuming
/// nothing) when what follows is not a raw string — i.e. `r#ident`.
fn lex_raw_string(cur: &mut Cursor<'_>) -> bool {
    let save_pos = cur.pos;
    let save_line = cur.line;
    let save_ls = cur.line_start;
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek() != Some('"') {
        // Not a raw string (raw identifier, or stray hashes): rewind.
        cur.pos = save_pos;
        cur.line = save_line;
        cur.line_start = save_ls;
        return false;
    }
    cur.bump(); // opening quote
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            // Need `hashes` hash characters to close.
            for i in 0..hashes {
                if cur.peek_at(i) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return true;
        }
    }
    true // unterminated: consumed to EOF, still a string token
}
