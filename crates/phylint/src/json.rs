//! Machine-readable findings: a hand-rolled JSON writer (and a small
//! parser for the self-check tests). No dependencies, stable schema.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema": 1,
//!   "files_scanned": 123,
//!   "suppressions_used": 4,
//!   "counts": {"panic_path": 0, "...": 0},
//!   "findings": [
//!     {"rule": "lock_order", "path": "crates/...", "line": 7,
//!      "msg": "...", "call_path": ["f (a.rs:1)", "g (b.rs:2)"]}
//!   ]
//! }
//! ```
//!
//! Each finding is serialised on **one line**, in the report's sorted
//! (path, line, rule) order, so `diff`/`comm` against a committed
//! baseline works line-by-line (`scripts/phylint_diff.sh`). Key order
//! is fixed; adding keys bumps `schema`.

use std::collections::BTreeMap;

use crate::report::{Finding, Report, ALL_RULES};

/// Current schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a single-line JSON object.
pub fn finding_to_json(f: &Finding) -> String {
    let path = escape(&f.path.display().to_string());
    let call_path: Vec<String> = f
        .call_path
        .iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"msg\":\"{}\",\"call_path\":[{}]}}",
        f.rule.name(),
        path,
        f.line,
        escape(&f.msg),
        call_path.join(",")
    )
}

/// The whole report. Findings one per line; everything else compact.
pub fn report_to_json(r: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"schema\":{SCHEMA_VERSION},\n"));
    out.push_str(&format!("\"files_scanned\":{},\n", r.files_scanned));
    out.push_str(&format!("\"suppressions_used\":{},\n", r.suppressions_used));
    let counts: Vec<String> = r
        .counts()
        .iter()
        .map(|(rule, n)| format!("\"{}\":{n}", rule.name()))
        .collect();
    out.push_str(&format!("\"counts\":{{{}}},\n", counts.join(",")));
    out.push_str("\"findings\":[\n");
    for (i, f) in r.findings.iter().enumerate() {
        out.push_str(&finding_to_json(f));
        if i + 1 < r.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

/// A parsed JSON value — just enough for the self-check tests to
/// round-trip the emitted report.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A JSON parse or schema-validation failure: a message, usually
/// carrying a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    fn new(msg: impl Into<String>) -> JsonError {
        JsonError(msg.into())
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document. Errors carry a byte offset.
pub fn parse(src: &str) -> Result<Value, JsonError> {
    parse_impl(src).map_err(JsonError)
}

/// Parser internals keep plain `String` errors; [`parse`] wraps them
/// into the typed [`JsonError`] at the public boundary.
fn parse_impl(src: &str) -> Result<Value, String> {
    let b = src.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek_byte() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn parse_value(&mut self) -> Result<Value, String> {
        match self.peek_byte() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected byte {}", self.i)),
        }
    }

    fn parse_lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn parse_number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek_byte() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek_byte()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek_byte() else {
                return Err("unterminated string".to_string());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek_byte() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.i += 4;
                            // Surrogate pairs unsupported: the writer
                            // never emits them (only escapes < 0x20).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                _ => {
                    // Re-sync to char boundary for multi-byte UTF-8.
                    let s = &self.b[self.i - 1..];
                    let ch_len = utf8_len(c);
                    let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|_| "bad utf-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.i += ch_len - 1;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek_byte() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek_byte() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek_byte() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek_byte() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }
}

/// UTF-8 sequence length from the lead byte.
fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Validate the emitted report against the v1 schema; returns the
/// parsed value for further assertions.
pub fn validate_schema(src: &str) -> Result<Value, JsonError> {
    let v = parse(src)?;
    let num = |field: &Value, key: &str| {
        field
            .get(key)
            .and_then(Value::as_num)
            .ok_or_else(|| JsonError::new(format!("missing `{key}`")))
    };
    let schema = num(&v, "schema")?;
    if schema != f64::from(SCHEMA_VERSION) {
        return Err(JsonError::new(format!(
            "schema version {schema} != {SCHEMA_VERSION}"
        )));
    }
    num(&v, "files_scanned")?;
    num(&v, "suppressions_used")?;
    let counts = v
        .get("counts")
        .ok_or_else(|| JsonError::new("missing `counts`"))?;
    for rule in ALL_RULES {
        num(counts, rule.name())
            .map_err(|_| JsonError::new(format!("counts missing `{}`", rule.name())))?;
    }
    let findings = v
        .get("findings")
        .and_then(Value::as_arr)
        .ok_or_else(|| JsonError::new("missing `findings`"))?;
    for (i, f) in findings.iter().enumerate() {
        let field = |key: &str| {
            f.get(key)
                .ok_or_else(|| JsonError::new(format!("finding {i}: missing `{key}`")))
        };
        let rule = field("rule")?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("finding {i}: non-string `rule`")))?;
        if crate::report::RuleId::parse(rule).is_none() {
            return Err(JsonError::new(format!("finding {i}: unknown rule `{rule}`")));
        }
        field("path")?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("finding {i}: non-string `path`")))?;
        field("line")?
            .as_num()
            .ok_or_else(|| JsonError::new(format!("finding {i}: non-numeric `line`")))?;
        field("msg")?
            .as_str()
            .ok_or_else(|| JsonError::new(format!("finding {i}: non-string `msg`")))?;
        let cp = field("call_path")?
            .as_arr()
            .ok_or_else(|| JsonError::new(format!("finding {i}: non-array `call_path`")))?;
        if cp.iter().any(|e| e.as_str().is_none()) {
            return Err(JsonError::new(format!(
                "finding {i}: non-string call_path entry"
            )));
        }
    }
    Ok(v)
}
