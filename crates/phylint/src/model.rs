//! Phase 1 of the workspace analyzer: an approximate **item model**
//! built from the flat token streams of every crate-source file.
//!
//! The model records, per file, the things the semantic rules reason
//! about across file boundaries:
//!
//! * function items — name, owning `impl` type, visibility, unsafety,
//!   `#[target_feature(enable = …)]`, parameter arity, body span;
//! * call sites inside each body — callee name, path qualifier,
//!   method-vs-path shape, argument count, and whether the call sits
//!   inside a `// phylint: hot` region;
//! * allocation and panic sites inside each body (same denylists as
//!   the token rules);
//! * lock **fields** — struct fields whose declared type mentions
//!   `Mutex` or `RwLock` — and lock **acquisitions**
//!   (`field.lock()` / `.read()` / `.write()`), with an approximation
//!   of guard lifetime: a `let`-bound guard is held until its
//!   enclosing block closes, an un-bound (method-chained) guard only
//!   until its statement's `;`;
//! * `pub enum …Error` declarations and whether they carry
//!   `#[non_exhaustive]`;
//! * `pub fn` `Result` return types, for the error-surface audit.
//!
//! Everything here is an **approximation over tokens**, not a type
//! system: name resolution is by identifier (plus arity), trait
//! dispatch is invisible, and a shadowed local named like a lock field
//! would be misattributed. The rules that consume the model are
//! written — and documented — around those limits; see
//! `crates/phylint/README.md`.

use crate::analysis::FileAnalysis;
use crate::lexer::{TokKind, Token};

/// Index of a function in [`Workspace::fns`].
pub type FnId = usize;

/// A call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (the identifier before `(`).
    pub name: String,
    /// Path qualifier when the call is `Qual::name(…)` — `Vec`,
    /// `Self`, a module segment… `None` for bare and method calls.
    pub qualifier: Option<String>,
    /// True for `.name(…)` method-call shape.
    pub is_method: bool,
    /// Number of comma-separated arguments at the call site
    /// (excluding any method receiver).
    pub args: usize,
    /// 1-based line of the callee identifier.
    pub line: u32,
    /// The call sits inside a `// phylint: hot` region.
    pub in_hot_region: bool,
}

/// An allocation or panic site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// What was found (`Vec::new`, `format!`, `.unwrap()`, …).
    pub what: String,
    /// 1-based line.
    pub line: u32,
}

/// One acquisition of a known lock field inside a function body.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Index into [`Workspace::lock_fields`].
    pub field: usize,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// Guard lifetime approximation: `let`-bound guards are held to
    /// the end of their enclosing block; chained temporaries only to
    /// the end of their statement.
    pub held_to_block_end: bool,
    /// Brace depth (within the function body) of the statement, used
    /// to scope `let`-bound guards.
    pub depth: usize,
    /// Ordinal of the token at which the acquisition occurs — used to
    /// order acquisitions and calls within one body.
    pub ord: usize,
    /// Last line on which the guard is considered held: the enclosing
    /// block's closing brace for a `let`-bound guard, the statement's
    /// `;` (or the block close, whichever comes first) for a chained
    /// temporary.
    pub scope_end_line: u32,
}

/// A struct field whose type mentions `Mutex` or `RwLock`.
#[derive(Debug, Clone)]
pub struct LockField {
    /// Field name.
    pub name: String,
    /// Owning struct name.
    pub struct_name: String,
    /// File the declaration lives in (index into the engine's file
    /// list).
    pub file: usize,
    /// 1-based declaration line.
    pub line: u32,
    /// True for `RwLock` (acquired via `.read()`/`.write()`),
    /// false for `Mutex` (acquired via `.lock()`).
    pub rwlock: bool,
}

/// A `pub enum` whose name ends in `Error`.
#[derive(Debug, Clone)]
pub struct ErrorEnum {
    /// Enum name.
    pub name: String,
    /// File index.
    pub file: usize,
    /// 1-based declaration line.
    pub line: u32,
    /// Carries `#[non_exhaustive]`.
    pub non_exhaustive: bool,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Name of the `impl` target type when the fn sits inside an
    /// `impl` block (`SimdTrellis`, …).
    pub impl_type: Option<String>,
    /// File index into the engine's file list.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Declared `pub` (any `pub(…)` restriction counts).
    pub is_pub: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Takes a `self` receiver.
    pub has_self: bool,
    /// Parameter count excluding the receiver.
    pub arity: usize,
    /// `#[target_feature(enable = "…")]` feature name, when present.
    pub target_feature: Option<String>,
    /// The fn (or an enclosing item) is `#[cfg(test)]`-gated.
    pub cfg_test: bool,
    /// Body byte span; `None` for bodiless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Calls made in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Allocation sites in the body (alloc-denylist names).
    pub alloc_sites: Vec<Site>,
    /// Panic sites in the body (panic-denylist names).
    pub panic_sites: Vec<Site>,
    /// Lock acquisitions in the body, in source order.
    pub locks: Vec<LockAcquire>,
    /// Body contains `is_x86_feature_detected!` — a runtime CPU
    /// feature guard.
    pub has_feature_guard: bool,
    /// Error-type tokens of a `Result<_, E>` return type, normalised
    /// to space-joined tokens (`String`, `Box < dyn Error >`, …).
    pub result_err: Option<String>,
    /// Any body line overlaps a `// phylint: hot` region.
    pub overlaps_hot: bool,
}

impl FnItem {
    /// `Type::name` or bare `name`, for diagnostics.
    pub fn display_name(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The assembled workspace model: every crate-source file's items.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All functions, workspace-wide.
    pub fns: Vec<FnItem>,
    /// All lock fields, workspace-wide, in (file, line) order — the
    /// index into this list is the lock's **canonical rank** for the
    /// lock-order rule.
    pub lock_fields: Vec<LockField>,
    /// All `pub enum …Error` declarations.
    pub error_enums: Vec<ErrorEnum>,
}

impl Workspace {
    /// Merge per-file models (in engine file order) into one
    /// workspace, rebasing each file's local lock-field indices onto
    /// the global canonical rank list. Files are visited in sorted
    /// path order, and fields within a file in declaration order, so
    /// the canonical lock order is deterministic and documented:
    /// **declaration order, files sorted by path**.
    pub fn assemble(models: Vec<FileModel>) -> Workspace {
        let mut ws = Workspace::default();
        for model in models {
            let base = ws.lock_fields.len();
            ws.lock_fields.extend(model.lock_fields);
            for mut f in model.fns {
                for l in &mut f.locks {
                    l.field += base;
                }
                ws.fns.push(f);
            }
            ws.error_enums.extend(model.error_enums);
        }
        ws
    }
}

/// Keywords that are followed by `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 10] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move",
];

/// Names that allocate — the hot-path denylist, shared in spirit with
/// `rules::alloc_hot` (method names checked for `.x()` shape, macro
/// names for `x!`, and the `Type::ctor` pairs handled separately).
const ALLOC_METHODS: [&str; 4] = ["to_vec", "to_owned", "to_string", "collect"];
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];
const PANIC_MACROS: [&str; 3] = ["panic", "todo", "unimplemented"];

/// Extract the item model of one crate-source file. `file` is the
/// file's index in the engine's analysis list.
///
/// Two passes: declarations first (structs' lock fields, error
/// enums), then functions — so a body can acquire a lock whose struct
/// is declared later in the file.
pub fn extract(fa: &FileAnalysis, file: usize) -> FileModel {
    let mut ex = Extractor {
        fa,
        file,
        toks: &fa.lexed.tokens,
        out: FileModel::default(),
        mode: Mode::Decls,
    };
    ex.scan_items(0, fa.lexed.tokens.len(), &mut Vec::new());
    ex.mode = Mode::Fns;
    ex.scan_items(0, fa.lexed.tokens.len(), &mut Vec::new());
    ex.out
}

/// Which item class a scan pass records.
#[derive(PartialEq, Clone, Copy)]
enum Mode {
    /// Structs (lock fields) and enums.
    Decls,
    /// Functions (which consult the completed lock-field list).
    Fns,
}

/// Model slice for one file, merged into [`Workspace`] by the engine.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Functions declared in the file.
    pub fns: Vec<FnItem>,
    /// Lock fields declared in the file.
    pub lock_fields: Vec<LockField>,
    /// `pub enum …Error` declarations in the file.
    pub error_enums: Vec<ErrorEnum>,
}

struct Extractor<'a> {
    fa: &'a FileAnalysis,
    file: usize,
    toks: &'a [Token],
    out: FileModel,
    mode: Mode,
}

/// Attributes gathered while scanning up to an item keyword.
#[derive(Default, Clone)]
struct PendingAttrs {
    target_feature: Option<String>,
    non_exhaustive: bool,
    cfg_test: bool,
}

impl<'a> Extractor<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.toks
            .get(i)
            .and_then(|t| self.fa.src.get(t.start..t.end))
            .unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Walk tokens `[from, to)` at item level, recursing into `impl`
    /// and `mod` bodies. `impl_stack` carries enclosing impl-type
    /// names.
    fn scan_items(&mut self, from: usize, to: usize, impl_stack: &mut Vec<String>) {
        let mut attrs = PendingAttrs::default();
        let mut i = from;
        while i < to {
            match self.text(i) {
                "#" if self.text(i + 1) == "[" => {
                    let end = self.matching(i + 1, "[", "]", to);
                    self.read_attr(i + 2, end, &mut attrs);
                    i = end + 1;
                }
                "impl" => {
                    // Skip generics, read the target type name (last
                    // path segment before `{` / `for`), recurse into
                    // the body.
                    let mut j = i + 1;
                    if self.text(j) == "<" {
                        j = self.matching(j, "<", ">", to) + 1;
                    }
                    // `impl Trait for Type` — the *type* is what
                    // methods hang off; take the segment before `{`.
                    let mut ty: Option<String> = None;
                    while j < to && self.text(j) != "{" && self.text(j) != ";" {
                        if self.text(j) == "for" {
                            ty = None; // everything before `for` was the trait
                        } else if self.kind(j) == Some(TokKind::Ident) && ty.is_none() {
                            ty = Some(self.text(j).to_string());
                        } else if self.text(j) == "<" {
                            j = self.matching(j, "<", ">", to);
                        }
                        j += 1;
                    }
                    if j < to && self.text(j) == "{" {
                        let end = self.matching(j, "{", "}", to);
                        impl_stack.push(ty.unwrap_or_default());
                        self.scan_items(j + 1, end, impl_stack);
                        impl_stack.pop();
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                    attrs = PendingAttrs::default();
                }
                "mod" => {
                    // `mod name { … }`: recurse; `mod name;` skip.
                    let mut j = i + 1;
                    while j < to && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if j < to && self.text(j) == "{" {
                        let end = self.matching(j, "{", "}", to);
                        let gated = attrs.cfg_test;
                        if !gated {
                            self.scan_items(j + 1, end, impl_stack);
                        }
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                    attrs = PendingAttrs::default();
                }
                "struct" => {
                    i = if self.mode == Mode::Decls {
                        self.read_struct(i, to)
                    } else {
                        self.skip_item(i, to)
                    };
                    attrs = PendingAttrs::default();
                }
                "enum" => {
                    i = if self.mode == Mode::Decls {
                        self.read_enum(i, to, &attrs)
                    } else {
                        self.skip_item(i, to)
                    };
                    attrs = PendingAttrs::default();
                }
                "fn" => {
                    i = if self.mode == Mode::Fns {
                        self.read_fn(i, to, impl_stack, &attrs)
                    } else {
                        self.skip_item(i, to)
                    };
                    attrs = PendingAttrs::default();
                }
                // `pub`, `unsafe`, `const`, `extern`, `async` pass
                // through: read_fn looks backwards for them.
                "pub" | "unsafe" | "const" | "extern" | "async" | "default" => {
                    i += 1;
                }
                "trait" | "union" => {
                    // Recurse into trait bodies for default methods.
                    let mut j = i + 1;
                    while j < to && self.text(j) != "{" && self.text(j) != ";" {
                        if self.text(j) == "<" {
                            j = self.matching(j, "<", ">", to);
                        }
                        j += 1;
                    }
                    if j < to && self.text(j) == "{" {
                        let end = self.matching(j, "{", "}", to);
                        self.scan_items(j + 1, end, impl_stack);
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                    attrs = PendingAttrs::default();
                }
                _ => {
                    // Any other token at item level (use/static/type/
                    // macro invocations…): skip to the end of the
                    // item-ish statement, ignoring attribute state.
                    if self.text(i) == "{" {
                        i = self.matching(i, "{", "}", to) + 1;
                    } else {
                        i += 1;
                    }
                    attrs = PendingAttrs::default();
                }
            }
        }
    }

    /// Skip past one item starting at its keyword: to its body's
    /// matching `}` or its terminating `;`, whichever comes first.
    fn skip_item(&self, at: usize, to: usize) -> usize {
        let mut j = at + 1;
        while j < to {
            match self.text(j) {
                "{" => return self.matching(j, "{", "}", to) + 1,
                ";" => return j + 1,
                "(" => j = self.matching(j, "(", ")", to),
                _ => {}
            }
            j += 1;
        }
        to
    }

    /// Parse one attribute body `#[ … ]` (tokens `(from, end)`
    /// exclusive of the brackets) into `attrs`.
    fn read_attr(&self, from: usize, end: usize, attrs: &mut PendingAttrs) {
        match self.text(from) {
            "target_feature" => {
                // target_feature(enable = "avx2")
                let mut j = from + 1;
                while j < end {
                    if self.text(j) == "enable"
                        && self.text(j + 1) == "="
                        && self.kind(j + 2) == Some(TokKind::Str)
                    {
                        attrs.target_feature =
                            Some(self.text(j + 2).trim_matches('"').to_string());
                    }
                    j += 1;
                }
            }
            "non_exhaustive" => attrs.non_exhaustive = true,
            "cfg" => {
                // Mirror analysis::match_cfg_test's `not()`-aware scan.
                let mut j = from + 1;
                while j < end {
                    match self.text(j) {
                        "not" if self.text(j + 1) == "(" => {
                            j = self.matching(j + 1, "(", ")", end);
                        }
                        "test" if self.kind(j) == Some(TokKind::Ident) => {
                            attrs.cfg_test = true;
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            _ => {}
        }
    }

    /// Parse `struct Name … { fields }`, recording Mutex/RwLock
    /// fields. Returns the index after the struct item.
    fn read_struct(&mut self, at: usize, to: usize) -> usize {
        let mut j = at + 1;
        let name = if self.kind(j) == Some(TokKind::Ident) {
            let n = self.text(j).to_string();
            j += 1;
            n
        } else {
            String::new()
        };
        if self.text(j) == "<" {
            j = self.matching(j, "<", ">", to) + 1;
        }
        // Tuple struct / unit struct: no named fields to inspect.
        while j < to && self.text(j) != "{" && self.text(j) != ";" {
            if self.text(j) == "(" {
                j = self.matching(j, "(", ")", to);
            }
            j += 1;
        }
        if j >= to || self.text(j) != "{" {
            return j + 1;
        }
        let end = self.matching(j, "{", "}", to);
        // Field grammar: attrs? vis? name `:` type `,`.
        let mut k = j + 1;
        while k < end {
            // Skip field attributes and visibility.
            while k < end && self.text(k) == "#" && self.text(k + 1) == "[" {
                k = self.matching(k + 1, "[", "]", end) + 1;
            }
            if self.text(k) == "pub" {
                k += 1;
                if self.text(k) == "(" {
                    k = self.matching(k, "(", ")", end) + 1;
                }
            }
            if self.kind(k) != Some(TokKind::Ident) || self.text(k + 1) != ":" {
                k += 1;
                continue;
            }
            let fname = self.text(k).to_string();
            let fline = self.toks[k].line;
            // Type tokens run to the next `,` at bracket depth 0.
            let mut t = k + 2;
            let mut lock: Option<bool> = None;
            while t < end {
                match self.text(t) {
                    "," => break,
                    "<" => {}
                    "(" => t = self.matching(t, "(", ")", end),
                    "Mutex" if self.text(t + 1) == "<" => lock = Some(false),
                    "RwLock" if self.text(t + 1) == "<" => lock = Some(true),
                    _ => {}
                }
                t += 1;
            }
            if let Some(rwlock) = lock {
                self.out.lock_fields.push(LockField {
                    name: fname,
                    struct_name: name.clone(),
                    file: self.file,
                    line: fline,
                    rwlock,
                });
            }
            k = t + 1;
        }
        end + 1
    }

    /// Parse `enum Name …`, recording public `…Error` enums. Returns
    /// the index after the enum item.
    fn read_enum(&mut self, at: usize, to: usize, attrs: &PendingAttrs) -> usize {
        let is_pub = at >= 1 && {
            // `pub enum` / `pub(crate) enum`: look back over a
            // possible `(…)` restriction to the `pub`.
            let mut b = at - 1;
            if self.text(b) == ")" {
                while b > 0 && self.text(b) != "(" {
                    b -= 1;
                }
                b = b.saturating_sub(1);
            }
            self.text(b) == "pub"
        };
        let name = self.text(at + 1).to_string();
        let mut j = at + 1;
        while j < to && self.text(j) != "{" && self.text(j) != ";" {
            j += 1;
        }
        let end = if j < to && self.text(j) == "{" {
            self.matching(j, "{", "}", to)
        } else {
            j
        };
        if is_pub && name.ends_with("Error") {
            self.out.error_enums.push(ErrorEnum {
                name,
                file: self.file,
                line: self.toks[at].line,
                non_exhaustive: attrs.non_exhaustive,
            });
        }
        end + 1
    }

    /// Parse one `fn` item starting at the `fn` keyword; extract the
    /// signature and scan the body. Returns the index just after the
    /// item.
    fn read_fn(
        &mut self,
        at: usize,
        to: usize,
        impl_stack: &[String],
        attrs: &PendingAttrs,
    ) -> usize {
        // Qualifiers sit immediately before `fn`:
        // `pub (crate) const unsafe extern "C" fn`.
        let mut is_pub = false;
        let mut is_unsafe = false;
        {
            let mut b = at;
            while b > 0 {
                b -= 1;
                match self.text(b) {
                    "unsafe" => is_unsafe = true,
                    "pub" => is_pub = true,
                    "const" | "async" | "extern" | "default" => {}
                    ")" => {
                        // pub(crate) restriction — walk to its `(`.
                        let mut d = 1usize;
                        while b > 0 && d > 0 {
                            b -= 1;
                            match self.text(b) {
                                ")" => d += 1,
                                "(" => d -= 1,
                                _ => {}
                            }
                        }
                    }
                    s if s.starts_with('"') => {} // extern ABI string
                    _ => break,
                }
            }
        }

        let name_i = at + 1;
        let name = self.text(name_i).to_string();
        let line = self.toks[at].line;
        let mut j = name_i + 1;
        if self.text(j) == "<" {
            j = self.matching(j, "<", ">", to) + 1;
        }
        if self.text(j) != "(" {
            return j; // malformed; bail without a model entry
        }
        let params_end = self.matching(j, "(", ")", to);
        let (has_self, arity) = self.read_params(j + 1, params_end);

        // Return type: tokens between `->` and the body `{` (or `;`),
        // stopping at `where`.
        let mut k = params_end + 1;
        let mut result_err = None;
        if self.text(k) == "-" && self.text(k + 1) == ">" {
            let ret_start = k + 2;
            let mut depth = 0i32;
            let mut r = ret_start;
            while r < to {
                match self.text(r) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "{" | ";" if depth <= 0 => break,
                    "where" if depth <= 0 => break,
                    _ => {}
                }
                r += 1;
            }
            result_err = self.result_error_tokens(ret_start, r);
            k = r;
        }
        // Skip a where clause.
        while k < to && self.text(k) != "{" && self.text(k) != ";" {
            k += 1;
        }

        let mut item = FnItem {
            name,
            impl_type: impl_stack.last().filter(|s| !s.is_empty()).cloned(),
            file: self.file,
            line,
            is_pub,
            is_unsafe,
            has_self,
            arity,
            target_feature: attrs.target_feature.clone(),
            cfg_test: attrs.cfg_test || self.fa.in_test_span(self.toks[at].start),
            body: None,
            calls: Vec::new(),
            alloc_sites: Vec::new(),
            panic_sites: Vec::new(),
            locks: Vec::new(),
            has_feature_guard: false,
            result_err,
            overlaps_hot: false,
        };

        let after = if k < to && self.text(k) == "{" {
            let end = self.matching(k, "{", "}", to);
            item.body = Some((self.toks[k].start, self.toks[end].end));
            self.scan_body(k, end, &mut item);
            item.overlaps_hot = (self.toks[k].line..=self.toks[end].line)
                .any(|l| self.fa.in_hot_region(l));
            end + 1
        } else {
            k + 1
        };
        self.out.fns.push(item);
        after
    }

    /// Parameter shape: (`has_self`, arity-excluding-self). Counts
    /// top-level commas between `from` and `end` (exclusive).
    fn read_params(&self, from: usize, end: usize) -> (bool, usize) {
        if from >= end {
            return (false, 0);
        }
        let mut has_self = false;
        {
            // Receiver: `self`, `&self`, `&'a mut self`, `mut self`,
            // `self: Pin<…>`.
            let mut j = from;
            while j < end
                && (matches!(self.text(j), "&" | "mut")
                    || self.kind(j) == Some(TokKind::Lifetime))
            {
                j += 1;
            }
            if self.text(j) == "self" {
                has_self = true;
            }
        }
        let mut commas = 0usize;
        let mut depth = 0i32;
        let mut j = from;
        let mut saw_tokens = false;
        let mut trailing_comma = false;
        while j < end {
            saw_tokens = true;
            match self.text(j) {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth == 0 => {
                    commas += 1;
                    trailing_comma = j + 1 == end;
                }
                _ => {}
            }
            j += 1;
        }
        if !saw_tokens {
            return (has_self, 0);
        }
        let mut params = commas + 1;
        if trailing_comma {
            params -= 1;
        }
        if has_self {
            params -= 1;
        }
        (has_self, params)
    }

    /// `Result < Ok , Err >` in a return-type token range: the error
    /// type's tokens, space-joined. `None` when the return type is not
    /// a `Result` or elides the error parameter (alias).
    fn result_error_tokens(&self, from: usize, to: usize) -> Option<String> {
        let mut i = from;
        while i < to {
            if self.text(i) == "Result" && self.text(i + 1) == "<" {
                // Find the comma at angle depth 1.
                let open = i + 1;
                let mut depth = 0i32;
                let mut j = open;
                let mut comma = None;
                let mut close = None;
                while j < to {
                    match self.text(j) {
                        "<" => depth += 1,
                        ">" => {
                            depth -= 1;
                            if depth == 0 {
                                close = Some(j);
                                break;
                            }
                        }
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "," if depth == 1 => comma = comma.or(Some(j)),
                        _ => {}
                    }
                    j += 1;
                }
                let (comma, close) = (comma?, close?);
                let toks: Vec<&str> = (comma + 1..close).map(|k| self.text(k)).collect();
                return Some(toks.join(" "));
            }
            i += 1;
        }
        None
    }

    /// Scan one fn body (`open`..=`close` are the brace token
    /// indices): calls, alloc/panic sites, lock acquisitions, feature
    /// guards.
    fn scan_body(&mut self, open: usize, close: usize, item: &mut FnItem) {
        let lock_names: Vec<(String, bool)> = self
            .out
            .lock_fields
            .iter()
            .map(|l| (l.name.clone(), l.rwlock))
            .collect();
        let mut depth = 0usize;
        // Stack of open-brace token indices, innermost last — used to
        // find the enclosing block close of a `let`-bound guard.
        let mut braces: Vec<usize> = Vec::new();
        let mut i = open;
        while i <= close {
            let text = self.text(i);
            match text {
                "{" => {
                    depth += 1;
                    braces.push(i);
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    braces.pop();
                }
                _ => {}
            }
            let Some(tok) = self.toks.get(i) else { break };
            if tok.kind == TokKind::Ident {
                let line = tok.line;
                let next_is = |s: &str| self.text(i + 1) == s;
                // Macros.
                if next_is("!") {
                    if text == "is_x86_feature_detected" {
                        item.has_feature_guard = true;
                    }
                    if ALLOC_MACROS.contains(&text) {
                        item.alloc_sites.push(Site {
                            what: format!("{text}!"),
                            line,
                        });
                    }
                    if PANIC_MACROS.contains(&text) {
                        item.panic_sites.push(Site {
                            what: format!("{text}!"),
                            line,
                        });
                    }
                    i += 1;
                    continue;
                }
                // `Vec::new` / `Vec::with_capacity` / `Box::new` /
                // `String::…` ctors.
                if matches!(text, "Vec" | "Box" | "String")
                    && next_is(":")
                    && self.text(i + 2) == ":"
                {
                    let ctor = self.text(i + 3);
                    let allocating = match text {
                        "Vec" | "Box" => matches!(ctor, "new" | "with_capacity"),
                        "String" => true,
                        _ => false,
                    };
                    if allocating {
                        item.alloc_sites.push(Site {
                            what: format!("{text}::{ctor}"),
                            line,
                        });
                        i += 4;
                        continue;
                    }
                }
                // Method-shaped denylist entries and panics. The
                // alloc methods match on `.name` alone so turbofish
                // forms (`.collect::<Vec<_>>()`) are not missed.
                let prev_dot = i > 0 && self.text(i - 1) == ".";
                if prev_dot && ALLOC_METHODS.contains(&text) {
                    item.alloc_sites.push(Site {
                        what: format!(".{text}()"),
                        line,
                    });
                }
                if prev_dot && next_is("(") && matches!(text, "unwrap" | "expect") {
                    item.panic_sites.push(Site {
                        what: format!(".{text}()"),
                        line,
                    });
                }
                // Lock acquisition: `field . lock ( )` etc.
                if prev_dot
                    && matches!(text, "lock" | "read" | "write")
                    && next_is("(")
                    && self.kind(i - 2) == Some(TokKind::Ident)
                {
                    let field_name = self.text(i - 2);
                    let matched = lock_names.iter().enumerate().find(|(_, (n, rw))| {
                        n == field_name
                            && if *rw {
                                text == "read" || text == "write"
                            } else {
                                text == "lock"
                            }
                    });
                    if let Some((fi, _)) = matched {
                        let let_bound = self.stmt_is_let_bound(open, i);
                        let scope_end_line = if let_bound {
                            // Held to the enclosing block's close.
                            let enclosing = braces.last().copied().unwrap_or(open);
                            let end = self.matching(enclosing, "{", "}", close + 1);
                            self.toks.get(end).map(|t| t.line).unwrap_or(line)
                        } else {
                            self.stmt_end_line(i, close)
                        };
                        item.locks.push(LockAcquire {
                            field: fi, // file-local index; engine rebases
                            line,
                            held_to_block_end: let_bound,
                            depth,
                            ord: i,
                            scope_end_line,
                        });
                    }
                }
                // Call sites.
                if let Some(call) = self.read_call(i, close) {
                    item.calls.push(call);
                }
            }
            i += 1;
        }
    }

    /// Line of the `;` that ends the statement containing token `i`
    /// (at the statement's own brace depth), or of the `}` that closes
    /// its enclosing block if that comes first — the lifetime end of a
    /// chained temporary guard.
    fn stmt_end_line(&self, i: usize, close: usize) -> u32 {
        let mut delta = 0i32;
        let mut j = i;
        while j <= close {
            match self.text(j) {
                "{" | "(" | "[" => delta += 1,
                ";" if delta == 0 => {
                    return self.toks.get(j).map(|t| t.line).unwrap_or(0);
                }
                "}" | ")" | "]" => {
                    delta -= 1;
                    if delta < 0 {
                        return self.toks.get(j).map(|t| t.line).unwrap_or(0);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.toks.get(close).map(|t| t.line).unwrap_or(0)
    }

    /// Whether the statement containing token `i` starts with `let`
    /// (or `else` after a let-else) — the guard returned by the
    /// acquisition outlives the statement.
    fn stmt_is_let_bound(&self, body_open: usize, i: usize) -> bool {
        let mut b = i;
        while b > body_open {
            b -= 1;
            match self.text(b) {
                ";" | "{" | "}" => {
                    return matches!(self.text(b + 1), "let" | "while");
                }
                _ => {}
            }
        }
        false
    }

    /// Parse a call at ident token `i` if one starts there. Shapes:
    /// `name(…)`, `.name(…)`, `Qual::name(…)`, `name::<T>(…)`.
    fn read_call(&self, i: usize, close: usize) -> Option<CallSite> {
        let name = self.text(i);
        if NON_CALL_KEYWORDS.contains(&name) {
            return None;
        }
        let tok = self.toks.get(i)?;
        if tok.kind != TokKind::Ident {
            return None;
        }
        // What follows the name: `(`, or turbofish `::<…>(`.
        let mut after = i + 1;
        if self.text(after) == ":" && self.text(after + 1) == ":" && self.text(after + 2) == "<"
        {
            after = self.matching(after + 2, "<", ">", close + 1) + 1;
        }
        if self.text(after) != "(" {
            return None;
        }
        // A declaration (`fn name(`) is not a call; scan_items hands
        // us bodies only, but closures/`fn` items nested in bodies
        // exist. Skip `fn name(`.
        if i > 0 && self.text(i - 1) == "fn" {
            return None;
        }
        let is_method = i > 0 && self.text(i - 1) == ".";
        // Path qualifier: `Qual :: name`.
        let qualifier = if !is_method
            && i >= 3
            && self.text(i - 1) == ":"
            && self.text(i - 2) == ":"
            && self.kind(i - 3) == Some(TokKind::Ident)
        {
            Some(self.text(i - 3).to_string())
        } else {
            None
        };
        // Count arguments: commas at depth 1 within the parens.
        let close_paren = self.matching(after, "(", ")", close + 1);
        let args = if close_paren == after + 1 {
            0
        } else {
            let mut depth = 0i32;
            let mut commas = 0usize;
            for j in after..=close_paren {
                match self.text(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 1 => commas += 1,
                    "|" if depth == 1 => {
                        // Closure parameter pipes would miscount
                        // commas inside them; cheap fix: closures as
                        // arguments still separate via depth-1 commas,
                        // and commas inside `|a, b|` are rare in this
                        // codebase's call sites. Accept the
                        // approximation.
                    }
                    _ => {}
                }
            }
            commas + 1
        };
        Some(CallSite {
            name: name.to_string(),
            qualifier,
            is_method,
            args,
            line: tok.line,
            in_hot_region: self.fa.in_hot_region(tok.line),
        })
    }

    /// Index of the token matching the opener at `i` (`open`/`close`
    /// strings), scanning to at most `to`. Returns `to - 1` when
    /// unbalanced — lenient, like the lexer.
    fn matching(&self, i: usize, open: &str, close: &str, to: usize) -> usize {
        let mut depth = 0usize;
        let mut j = i;
        while j < to {
            let t = self.text(j);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            } else if open == "<" && (t == "(" || t == ";") && depth == 1 {
                // Generics never contain parens/semicolons at depth 1
                // in this grammar subset; `a < b(…)` was a comparison,
                // not generics. Bail to the comparison site.
                return j.saturating_sub(1);
            }
            j += 1;
        }
        to.saturating_sub(1)
    }
}
