//! The approximate workspace call graph: name-and-arity resolution
//! over the [`model`](crate::model) item lists, and breadth-first
//! reachability with parent links so every semantic finding can carry
//! the call path that proves it.
//!
//! # Resolution rules
//!
//! * `.name(a, b)` — method shape: candidates are workspace methods
//!   named `name` taking a receiver plus exactly two parameters.
//! * `Qual::name(a)` — path shape: when `Qual` is a type with
//!   workspace `impl` blocks (or `Self`, resolved against the caller's
//!   impl type), candidates come from those impls only; when `Qual`
//!   is unknown (`Vec`, `std`, a module alias…) the call is treated as
//!   external and ignored.
//! * `name(a)` — bare shape: candidates are workspace free functions
//!   named `name` with matching arity.
//!
//! `#[cfg(test)]` functions are never resolution targets. This is an
//! over-approximation (same name + same arity anywhere in the
//! workspace counts) layered on an under-approximation (trait-object
//! dispatch, function pointers and closures produce no edges); both
//! are deliberate and documented in the README.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::model::{CallSite, FnId, FnItem, Workspace};

/// Name/arity indices over a [`Workspace`].
pub struct CallGraph<'w> {
    /// The model the indices point into.
    pub ws: &'w Workspace,
    /// Method-shape index: name → fns with a receiver.
    methods: HashMap<&'w str, Vec<FnId>>,
    /// Bare/free index: name → fns without a receiver.
    free: HashMap<&'w str, Vec<FnId>>,
    /// Path index: (impl type, name) → fns.
    typed: HashMap<(&'w str, &'w str), Vec<FnId>>,
}

impl<'w> CallGraph<'w> {
    /// Build the indices. Test-gated fns are excluded so test helpers
    /// cannot pull production paths into a closure.
    pub fn new(ws: &'w Workspace) -> CallGraph<'w> {
        let mut methods: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut free: HashMap<&str, Vec<FnId>> = HashMap::new();
        let mut typed: HashMap<(&str, &str), Vec<FnId>> = HashMap::new();
        for (id, f) in ws.fns.iter().enumerate() {
            if f.cfg_test {
                continue;
            }
            if f.has_self {
                methods.entry(&f.name).or_default().push(id);
            } else {
                free.entry(&f.name).or_default().push(id);
            }
            if let Some(t) = &f.impl_type {
                typed.entry((t, &f.name)).or_default().push(id);
            }
        }
        CallGraph {
            ws,
            methods,
            free,
            typed,
        }
    }

    /// Candidate callees of one call site made from `caller`.
    pub fn resolve(&self, caller: &FnItem, call: &CallSite) -> Vec<FnId> {
        let arity_ok = |id: &&FnId| {
            let f = &self.ws.fns[**id];
            if f.has_self {
                // Method shape supplies the receiver implicitly; UFCS
                // path shape passes it as the first argument.
                call.args == f.arity || (!call.is_method && call.args == f.arity + 1)
            } else {
                call.args == f.arity
            }
        };
        if let Some(q) = &call.qualifier {
            let ty: &str = if q == "Self" {
                match &caller.impl_type {
                    Some(t) => t,
                    None => return Vec::new(),
                }
            } else {
                q
            };
            return match self.typed.get(&(ty, call.name.as_str())) {
                // A known workspace type: resolve within its impls.
                Some(ids) => ids.iter().filter(arity_ok).copied().collect(),
                // Unknown qualifier (std type, module path): external.
                None => Vec::new(),
            };
        }
        if call.is_method {
            return self
                .methods
                .get(call.name.as_str())
                .map(|ids| ids.iter().filter(arity_ok).copied().collect())
                .unwrap_or_default();
        }
        self.free
            .get(call.name.as_str())
            .map(|ids| ids.iter().filter(arity_ok).copied().collect())
            .unwrap_or_default()
    }

    /// Breadth-first closure from `roots` (pairs of a root fn and the
    /// call site within it that seeds the walk). Returns, for every
    /// reached fn, the shortest chain of `(fn, call line)` hops that
    /// reached it — the proof path findings print.
    pub fn reach(&self, roots: &[(FnId, &CallSite)]) -> BTreeMap<FnId, Vec<Hop>> {
        let mut paths: BTreeMap<FnId, Vec<Hop>> = BTreeMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for (root_id, call) in roots {
            for callee in self.resolve(&self.ws.fns[*root_id], call) {
                if paths.contains_key(&callee) {
                    continue;
                }
                paths.insert(
                    callee,
                    vec![Hop {
                        caller: *root_id,
                        line: call.line,
                        callee,
                    }],
                );
                queue.push_back(callee);
            }
        }
        while let Some(id) = queue.pop_front() {
            let base = paths.get(&id).cloned().unwrap_or_default();
            let caller = &self.ws.fns[id];
            for call in &caller.calls {
                for callee in self.resolve(caller, call) {
                    if paths.contains_key(&callee) {
                        continue;
                    }
                    let mut p = base.clone();
                    p.push(Hop {
                        caller: id,
                        line: call.line,
                        callee,
                    });
                    paths.insert(callee, p);
                    queue.push_back(callee);
                }
            }
        }
        paths
    }

    /// Render a hop chain as human-readable path strings
    /// (`SimdTrellis::acs_step (crates/coding/src/simd.rs:120)` …),
    /// one per hop, starting from the root caller.
    pub fn render_path(&self, files: &[std::path::PathBuf], hops: &[Hop]) -> Vec<String> {
        let mut out = Vec::with_capacity(hops.len() + 1);
        if let Some(first) = hops.first() {
            let root = &self.ws.fns[first.caller];
            out.push(format!(
                "{} ({}:{})",
                root.display_name(),
                files[root.file].display(),
                first.line
            ));
        }
        for h in hops {
            let callee = &self.ws.fns[h.callee];
            out.push(format!(
                "{} ({}:{})",
                callee.display_name(),
                files[callee.file].display(),
                callee.line
            ));
        }
        out
    }
}

/// One edge of a reaching path: `caller` invoked `callee` at `line`
/// (of the caller's file).
#[derive(Debug, Clone)]
pub struct Hop {
    /// Calling function.
    pub caller: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
    /// Called function.
    pub callee: FnId,
}
