//! Wire-format consistency rule: the constants in
//! `crates/transport/src/frame.rs` and the documented wire-format
//! tables in `crates/transport/src/lib.rs` must agree — the frame
//! magic, the control-frame size, the control type-byte range, and
//! every header field width. A doc table that drifts from the code it
//! documents is a protocol bug waiting for a second implementation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{self, TokKind};
use crate::report::{Finding, RuleId};

/// Everything the rule extracts from `frame.rs`.
#[derive(Debug, Default)]
struct FrameConsts {
    magic: Option<String>,
    consts: BTreeMap<String, i64>,
    /// `(name, value, line)` for the control type bytes, in source
    /// order.
    type_bytes: Vec<(String, i64, u32)>,
}

/// Run the wire-format check rooted at `root`. Missing transport
/// sources make the rule a no-op (fixture trees without a transport
/// crate are legitimate).
pub fn check(root: &Path, out: &mut Vec<Finding>) {
    let frame_path = root.join("crates/transport/src/frame.rs");
    let lib_path = root.join("crates/transport/src/lib.rs");
    let (Ok(frame_src), Ok(lib_src)) = (
        std::fs::read_to_string(&frame_path),
        std::fs::read_to_string(&lib_path),
    ) else {
        return;
    };
    let rel_frame = PathBuf::from("crates/transport/src/frame.rs");
    let rel_lib = PathBuf::from("crates/transport/src/lib.rs");

    let fc = parse_frame_consts(&frame_src);
    let mut fail = |path: &PathBuf, line: u32, msg: String| {
        out.push(Finding::new(RuleId::WireFormat, path.clone(), line, msg));
    };

    // --- Constants that must exist in frame.rs -----------------------
    let Some(magic) = fc.magic.clone() else {
        fail(
            &rel_frame,
            1,
            "MAGIC byte-string constant not found".to_string(),
        );
        return;
    };
    let need = ["HEADER_LEN", "CONTROL_FRAME_LEN", "BYTES_PER_SAMPLE", "MAX_STREAMS"];
    for name in need {
        if !fc.consts.contains_key(name) {
            fail(&rel_frame, 1, format!("const {name} not found or not numeric"));
            return;
        }
    }
    let header_len = fc.consts["HEADER_LEN"];
    let control_len = fc.consts["CONTROL_FRAME_LEN"];
    let bytes_per_sample = fc.consts["BYTES_PER_SAMPLE"];
    let max_streams = fc.consts["MAX_STREAMS"];

    // --- Type bytes: five, contiguous, disjoint from stream counts ---
    if fc.type_bytes.len() != 5 {
        fail(
            &rel_frame,
            1,
            format!(
                "expected 5 control type-byte constants (TYPE_*), found {}",
                fc.type_bytes.len()
            ),
        );
        return;
    }
    for w in fc.type_bytes.windows(2) {
        if w[1].1 != w[0].1 + 1 {
            fail(
                &rel_frame,
                w[1].2,
                format!(
                    "control type bytes must be contiguous: {} = {:#04X} does not \
                     follow {} = {:#04X}",
                    w[1].0, w[1].1, w[0].0, w[0].1
                ),
            );
        }
    }
    let ty_min = fc.type_bytes[0].1;
    let ty_max = fc.type_bytes[4].1;
    if ty_min <= max_streams {
        fail(
            &rel_frame,
            fc.type_bytes[0].2,
            format!(
                "control type bytes ({ty_min:#04X}…) overlap the data-frame stream-count \
                 range 1..={max_streams}: the offset-8 dispatch byte is ambiguous"
            ),
        );
    }

    // --- Doc side: headings and tables in lib.rs ---------------------
    let doc = DocSide::parse(&lib_src);

    match doc.control_fixed_len {
        None => fail(
            &rel_lib,
            1,
            "control-frame doc heading `**Control frame** (fixed N bytes)` not found"
                .to_string(),
        ),
        Some((n, line)) => {
            if n != control_len {
                fail(
                    &rel_lib,
                    line,
                    format!(
                        "doc says control frames are fixed {n} bytes but \
                         CONTROL_FRAME_LEN in frame.rs is {control_len}"
                    ),
                );
            }
        }
    }

    check_table(
        "data",
        &doc.data_table,
        &rel_lib,
        &mut fail,
        &TableSpec {
            magic: &magic,
            header_len: Some(header_len),
            total_len: None,
            payload_unit: Some(bytes_per_sample),
        },
    );
    check_table(
        "control",
        &doc.control_table,
        &rel_lib,
        &mut fail,
        &TableSpec {
            magic: &magic,
            header_len: None,
            total_len: Some(control_len),
            payload_unit: None,
        },
    );

    // Control table type row must list exactly the TYPE_* values.
    if let Some(row) = doc
        .control_table
        .iter()
        .find(|r| r.offset == Some(8))
    {
        let mut doc_tags: Vec<i64> = hex_values(&row.field);
        doc_tags.sort_unstable();
        let mut code_tags: Vec<i64> = fc.type_bytes.iter().map(|t| t.1).collect();
        code_tags.sort_unstable();
        if doc_tags != code_tags {
            let show = |v: &[i64]| {
                v.iter()
                    .map(|t| format!("{t:#04X}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            fail(
                &rel_lib,
                row.line,
                format!(
                    "control type-byte tags documented as [{}] but frame.rs \
                     defines [{}]",
                    show(&doc_tags),
                    show(&code_tags)
                ),
            );
        }
    }

    // Prose range `0xMIN..=0xMAX` must appear somewhere in the docs.
    let range = format!("{ty_min:#04X}..={ty_max:#04X}");
    if !lib_src.contains(&range) {
        fail(
            &rel_lib,
            1,
            format!(
                "doc prose never states the control type-byte range `{range}` \
                 matching frame.rs"
            ),
        );
    }
}

/// Expectations for one doc table.
struct TableSpec<'a> {
    magic: &'a str,
    /// Data table: offset of the first variable-size (payload) row.
    header_len: Option<i64>,
    /// Control table: total of all row sizes.
    total_len: Option<i64>,
    /// Data table: leading factor of the payload row's size formula.
    payload_unit: Option<i64>,
}

fn check_table(
    which: &str,
    rows: &[DocRow],
    rel_lib: &PathBuf,
    fail: &mut impl FnMut(&PathBuf, u32, String),
    spec: &TableSpec<'_>,
) {
    if rows.is_empty() {
        fail(
            rel_lib,
            1,
            format!("{which}-frame wire-format doc table not found"),
        );
        return;
    }
    // Row 0 is the magic: field text must quote the exact magic.
    let quoted = format!("\"{}\"", spec.magic);
    if !rows[0].field.contains(&quoted) {
        fail(
            rel_lib,
            rows[0].line,
            format!(
                "{which} table's first row does not name the frame magic {quoted} \
                 from frame.rs"
            ),
        );
    }
    // Offset continuity across numeric rows.
    let mut running: Option<i64> = Some(0);
    let mut fixed_total = 0i64;
    for row in rows {
        if let (Some(off), Some(expect)) = (row.offset, running) {
            if off != expect {
                fail(
                    rel_lib,
                    row.line,
                    format!(
                        "{which} table offsets are inconsistent: row at documented \
                         offset {off} should start at {expect} (prior offsets + sizes)"
                    ),
                );
            }
        }
        match (row.offset, row.size) {
            (Some(off), Some(sz)) if !row.size_variable => {
                running = Some(off + sz);
                fixed_total = off + sz;
            }
            _ => running = None,
        }
        if row.size_variable {
            if let (Some(unit), Some(lead)) = (spec.payload_unit, row.size) {
                if lead != unit {
                    fail(
                        rel_lib,
                        row.line,
                        format!(
                            "{which} table payload row scales by {lead} bytes/sample \
                             but BYTES_PER_SAMPLE is {unit}"
                        ),
                    );
                }
            }
        }
    }
    if let Some(header_len) = spec.header_len {
        // The first variable row's offset is the header length.
        if let Some(payload) = rows.iter().find(|r| r.size_variable) {
            if payload.offset != Some(header_len) {
                fail(
                    rel_lib,
                    payload.line,
                    format!(
                        "{which} table payload starts at documented offset {:?} but \
                         HEADER_LEN in frame.rs is {header_len}",
                        payload.offset
                    ),
                );
            }
        } else {
            fail(
                rel_lib,
                rows[0].line,
                format!("{which} table has no variable-size payload row"),
            );
        }
    }
    if let Some(total) = spec.total_len {
        if rows.iter().any(|r| r.offset.is_none() || r.size.is_none()) {
            fail(
                rel_lib,
                rows[0].line,
                format!("{which} table must be fully numeric (fixed-size frame)"),
            );
        } else if fixed_total != total {
            fail(
                rel_lib,
                rows[0].line,
                format!(
                    "{which} table rows sum to {fixed_total} bytes but the \
                     frame.rs constant says {total}"
                ),
            );
        }
    }
}

/// One parsed `| offset | size | field |` doc-table row.
#[derive(Debug)]
struct DocRow {
    offset: Option<i64>,
    /// Leading integer of the size cell.
    size: Option<i64>,
    /// Size cell had trailing non-numeric content (`4·n·s`).
    size_variable: bool,
    field: String,
    line: u32,
}

/// The documentation side: headings and tables pulled from `//!`
/// lines.
#[derive(Debug, Default)]
struct DocSide {
    control_fixed_len: Option<(i64, u32)>,
    data_table: Vec<DocRow>,
    control_table: Vec<DocRow>,
}

impl DocSide {
    fn parse(lib_src: &str) -> DocSide {
        let mut out = DocSide::default();
        #[derive(PartialEq)]
        enum Section {
            None,
            Data,
            Control,
        }
        let mut section = Section::None;
        for (idx, raw) in lib_src.lines().enumerate() {
            let line_no = (idx + 1) as u32;
            let t = raw.trim_start();
            let Some(doc) = t
                .strip_prefix("//!")
                .or_else(|| t.strip_prefix("///"))
            else {
                continue;
            };
            let doc = doc.trim();
            if doc.contains("**Data frame**") {
                section = Section::Data;
                continue;
            }
            if doc.contains("**Control frame**") {
                section = Section::Control;
                if let Some(rest) = doc.split("fixed").nth(1) {
                    if let Some(n) = leading_int(rest.trim_start()) {
                        out.control_fixed_len = Some((n, line_no));
                    }
                }
                continue;
            }
            if !doc.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = doc
                .trim_matches('|')
                .split('|')
                .map(str::trim)
                .collect();
            if cells.len() != 3 {
                continue;
            }
            // Skip the header and separator rows.
            if cells[0].eq_ignore_ascii_case("offset") || cells[0].starts_with('-') {
                continue;
            }
            let size_lead = leading_int(cells[1]);
            let size_variable = match size_lead {
                Some(n) => cells[1] != n.to_string(),
                None => true,
            };
            let row = DocRow {
                offset: leading_int(cells[0]),
                size: size_lead,
                size_variable,
                field: cells[2].to_string(),
                line: line_no,
            };
            match section {
                Section::Data => out.data_table.push(row),
                Section::Control => out.control_table.push(row),
                Section::None => {}
            }
        }
        out
    }
}

/// Parse the leading integer of a string (`21 bytes):` → 21).
fn leading_int(s: &str) -> Option<i64> {
    let digits: String = s.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Every `0xNN` hex value occurring in a string.
fn hex_values(s: &str) -> Vec<i64> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i + 2 < bytes.len() {
        if &bytes[i..i + 2] == b"0x" || &bytes[i..i + 2] == b"0X" {
            let mut j = i + 2;
            while j < bytes.len() && bytes[j].is_ascii_hexdigit() {
                j += 1;
            }
            if j > i + 2 {
                if let Ok(v) = i64::from_str_radix(
                    std::str::from_utf8(&bytes[i + 2..j]).unwrap_or("x"),
                    16,
                ) {
                    out.push(v);
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Pull the numeric constants, the MAGIC byte string, and the TYPE_*
/// control tags out of `frame.rs` by token scanning. Simple constant
/// expressions (`A + B + 4`) are folded using previously seen consts.
fn parse_frame_consts(frame_src: &str) -> FrameConsts {
    let lexed = lexer::lex(frame_src);
    let toks = &lexed.tokens;
    let text = |i: usize| -> &str {
        toks.get(i)
            .and_then(|t| frame_src.get(t.start..t.end))
            .unwrap_or("")
    };
    let mut fc = FrameConsts::default();
    let mut pending: Vec<(String, Vec<Term>, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if text(i) != "const" || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = text(i + 1).to_string();
        // Scan to the `=` that ends the type ascription. Array types
        // (`[u8; 4]`) contain semicolons, so only a `;` outside
        // brackets ends the item.
        let mut j = i + 2;
        let mut bracket = 0usize;
        while j < toks.len() {
            match text(j) {
                "[" => bracket += 1,
                "]" => bracket = bracket.saturating_sub(1),
                "=" if bracket == 0 => break,
                ";" if bracket == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || text(j) != "=" {
            i = j;
            continue;
        }
        j += 1;
        // MAGIC special case: `*b"CQ15"`.
        if name == "MAGIC" {
            let mut k = j;
            while k < toks.len() && text(k) != ";" {
                if toks[k].kind == TokKind::Str {
                    let lit = text(k);
                    let inner = lit
                        .trim_start_matches(['b', 'r', 'c'])
                        .trim_matches('#')
                        .trim_matches('"');
                    fc.magic = Some(inner.to_string());
                }
                k += 1;
            }
            i = k;
            continue;
        }
        let mut terms: Vec<Term> = Vec::new();
        let mut valid = true;
        while j < toks.len() && text(j) != ";" {
            let t = text(j);
            match toks[j].kind {
                TokKind::Number => match parse_number(t) {
                    Some(v) => terms.push(Term::Num(v)),
                    None => valid = false,
                },
                TokKind::Ident => terms.push(Term::Name(t.to_string())),
                TokKind::Punct if t == "+" => {}
                _ => valid = false,
            }
            j += 1;
        }
        if valid && !terms.is_empty() {
            pending.push((name, terms, toks[i].line));
        }
        i = j;
    }

    // Fold to a fixpoint so consts may reference consts declared
    // later in the file (`CONTROL_FRAME_LEN = … + CRC_LEN`).
    let mut progressed = true;
    while progressed {
        progressed = false;
        pending.retain(|(name, terms, line)| {
            let mut sum = 0i64;
            for term in terms {
                match term {
                    Term::Num(v) => sum += v,
                    Term::Name(n) => match fc.consts.get(n) {
                        Some(&v) => sum += v,
                        None => return true, // unresolved: keep
                    },
                }
            }
            fc.consts.insert(name.clone(), sum);
            if name.starts_with("TYPE_") {
                fc.type_bytes.push((name.clone(), sum, *line));
            }
            progressed = true;
            false
        });
    }
    fc.type_bytes.sort_by_key(|t| t.2);
    fc
}

/// One additive term of a constant expression.
enum Term {
    Num(i64),
    Name(String),
}

/// Parse a Rust numeric literal (decimal or 0x/0o/0b, `_` separators,
/// optional type suffix).
fn parse_number(t: &str) -> Option<i64> {
    let t = t.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        return i64::from_str_radix(&digits, 16).ok();
    }
    if let Some(oct) = t.strip_prefix("0o") {
        let digits: String = oct.chars().take_while(|c| ('0'..='7').contains(c)).collect();
        return i64::from_str_radix(&digits, 8).ok();
    }
    if let Some(bin) = t.strip_prefix("0b") {
        let digits: String = bin.chars().take_while(|c| *c == '0' || *c == '1').collect();
        return i64::from_str_radix(&digits, 2).ok();
    }
    let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}
