//! Golden-fixture tests: each tree under `tests/fixtures/` pins one
//! rule's positive and negative behaviour, and the last test
//! self-checks the real workspace — the same invocation CI gates on.

use std::path::Path;

use phylint::{run, Finding, Report, RuleId};

fn fixture(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    run(&root).expect("fixture tree readable")
}

/// 1-based line of the first fixture-source line containing `needle`,
/// so the tests assert real spans without hardcoding line numbers.
fn line_of(name: &str, file: &str, needle: &str) -> u32 {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .join(file);
    let src = std::fs::read_to_string(&path).expect("fixture source readable");
    for (idx, line) in src.lines().enumerate() {
        if line.contains(needle) {
            return (idx + 1) as u32;
        }
    }
    panic!("{needle:?} not found in {}", path.display());
}

fn rule_findings(report: &Report, rule: RuleId) -> Vec<(String, u32, String)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.path.display().to_string(), f.line, f.msg.clone()))
        .collect()
}

/// Full findings (including proving call paths) for one rule.
fn full_findings(report: &Report, rule: RuleId) -> Vec<&Finding> {
    report.findings.iter().filter(|f| f.rule == rule).collect()
}

#[test]
fn clean_fixture_is_clean() {
    let report = fixture("clean");
    assert!(
        report.is_clean(),
        "clean fixture must produce no findings, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
    assert_eq!(report.files_scanned, 2, "lib.rs + no_index.rs");
    assert_eq!(
        report.suppressions_used, 1,
        "the one trailing allow(panic_path) must count as used"
    );
}

#[test]
fn panic_path_fixture_finds_every_construct_with_spans() {
    let report = fixture("panic_path");
    let found = rule_findings(&report, RuleId::PanicPath);
    assert_eq!(found.len(), 5, "unwrap, expect, panic!, todo!, [idx]: {found:?}");
    for (path, _, _) in &found {
        assert_eq!(path, "src/lib.rs", "tests/itest.rs must never be flagged");
    }
    for needle in ["v.unwrap()", "v.expect(\"boom\")", "panic!(\"bad\")", "todo!()", "xs[0]"] {
        let want = line_of("panic_path", "src/lib.rs", needle);
        assert!(
            found.iter().any(|(_, line, _)| *line == want),
            "no finding at line {want} ({needle}): {found:?}"
        );
    }
    assert_eq!(report.count(RuleId::Marker), 0, "datapath marker is well-formed");
}

#[test]
fn alloc_hot_fixture_flags_only_the_hot_region() {
    let report = fixture("alloc_hot");
    let found = rule_findings(&report, RuleId::AllocHot);
    assert_eq!(found.len(), 6, "{found:?}");
    let region_start = line_of("alloc_hot", "src/lib.rs", "phylint: hot");
    for (_, line, _) in &found {
        assert!(
            *line > region_start,
            "finding at line {line} is outside the hot region (cold code flagged)"
        );
    }
    for what in [
        "Vec::new",
        "format!",
        ".to_string()",
        ".to_vec()",
        "Box::new",
        ".collect()",
    ] {
        assert!(
            found.iter().any(|(_, _, msg)| msg.contains(what)),
            "no finding mentions {what}: {found:?}"
        );
    }
}

#[test]
fn unsafe_fixture_requires_safety_comments() {
    let report = fixture("unsafe_safety");
    let found = rule_findings(&report, RuleId::UnsafeSafety);
    assert_eq!(found.len(), 2, "both unsafe tokens in `bare`: {found:?}");
    let bare_fn = line_of("unsafe_safety", "src/lib.rs", "pub unsafe fn bare");
    assert!(found.iter().all(|(_, line, _)| *line >= bare_fn));
}

#[test]
fn feature_gate_fixture_flags_undeclared_feature() {
    let report = fixture("feature_gate");
    let found = rule_findings(&report, RuleId::FeatureGate);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].1, line_of("feature_gate", "src/lib.rs", "imaginary"));
    assert!(found[0].2.contains("imaginary"));
}

#[test]
fn marker_fixture_flags_stale_and_malformed_markers() {
    let report = fixture("unused_allow");
    let found = rule_findings(&report, RuleId::Marker);
    assert_eq!(found.len(), 3, "{found:?}");
    assert!(found.iter().any(|(_, _, m)| m.contains("unused suppression")));
    assert!(found.iter().any(|(_, _, m)| m.contains("unrecognised")));
    assert!(found.iter().any(|(_, _, m)| m.contains("justification")));
}

#[test]
fn wire_fixture_catches_control_length_drift() {
    let report = fixture("wire_bad");
    let found = rule_findings(&report, RuleId::WireFormat);
    assert_eq!(found.len(), 1, "{found:?}");
    assert_eq!(found[0].0, "crates/transport/src/lib.rs");
    assert_eq!(
        found[0].1,
        line_of("wire_bad", "crates/transport/src/lib.rs", "fixed 22 bytes")
    );
    assert!(found[0].2.contains("22"), "{}", found[0].2);
    assert!(found[0].2.contains("21"), "{}", found[0].2);
}

#[test]
fn hot_transitive_fixture_proves_the_smuggled_allocation() {
    let report = fixture("hot_transitive");
    assert_eq!(
        report.findings.len(),
        1,
        "exactly the planted allocation, nothing else:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
    let found = full_findings(&report, RuleId::HotTransitive);
    assert_eq!(found.len(), 1);
    let f = found[0];
    assert_eq!(f.path.display().to_string(), "src/lib.rs");
    assert_eq!(
        f.line,
        line_of("hot_transitive", "src/lib.rs", "Vec::with_capacity"),
        "the finding lands on the allocation site, not the hot region"
    );
    assert!(f.msg.contains("Vec::with_capacity"), "{}", f.msg);
    assert!(f.msg.contains("leaf_alloc"), "{}", f.msg);
    // The proving call path walks hot region -> middle -> leaf.
    assert_eq!(f.call_path.len(), 3, "{:?}", f.call_path);
    assert!(f.call_path[0].contains("hot_entry"), "{:?}", f.call_path);
    let call_site = line_of("hot_transitive", "src/lib.rs", "middle(4)");
    assert!(
        f.call_path[0].contains(&format!("src/lib.rs:{call_site}")),
        "first hop pins the in-region call site: {:?}",
        f.call_path
    );
    assert!(f.call_path[1].contains("middle"), "{:?}", f.call_path);
    assert!(f.call_path[2].contains("leaf_alloc"), "{:?}", f.call_path);
}

#[test]
fn simd_guard_fixture_flags_decl_and_unguarded_call() {
    let report = fixture("simd_guard");
    let found = full_findings(&report, RuleId::SimdGuard);
    assert_eq!(report.findings.len(), 2, "only simd_guard fires here");
    assert_eq!(found.len(), 2, "{found:?}");
    let decl = found
        .iter()
        .find(|f| f.msg.contains("not declared"))
        .expect("missing-unsafe declaration finding");
    assert_eq!(
        decl.line,
        line_of("simd_guard", "src/lib.rs", "pub fn sneaky_kernel")
    );
    assert!(decl.msg.contains("sneaky_kernel"), "{}", decl.msg);
    let call = found
        .iter()
        .find(|f| f.msg.contains("guard"))
        .expect("unguarded call-site finding");
    assert_eq!(
        call.line,
        line_of("simd_guard", "src/lib.rs", "unsafe { kernel(xs) };"),
        "the guarded dispatch must stay silent; only `unguarded` is flagged"
    );
    assert_eq!(call.call_path.len(), 2, "{:?}", call.call_path);
    assert!(call.call_path[0].contains("unguarded"), "{:?}", call.call_path);
    assert!(call.call_path[1].contains("kernel"), "{:?}", call.call_path);
}

#[test]
fn lock_order_fixture_flags_direct_and_transitive_inversions() {
    let report = fixture("lock_order");
    let found = full_findings(&report, RuleId::LockOrder);
    assert_eq!(report.findings.len(), 2, "only lock_order fires here");
    assert_eq!(found.len(), 2, "{found:?}");
    // Direct inversion: `a` taken while `b` is held, both in one body.
    let direct = found
        .iter()
        .find(|f| f.call_path.is_empty())
        .expect("direct inversion finding");
    assert_eq!(
        direct.line,
        line_of("lock_order", "src/lib.rs", "let Ok(inner) = self.a.lock()")
    );
    assert!(direct.msg.contains("Shared.a"), "{}", direct.msg);
    assert!(direct.msg.contains("Shared.b"), "{}", direct.msg);
    assert!(direct.msg.contains("rank 0"), "{}", direct.msg);
    assert!(direct.msg.contains("rank 1"), "{}", direct.msg);
    // Transitive inversion: the acquisition hides behind a call.
    let transitive = found
        .iter()
        .find(|f| !f.call_path.is_empty())
        .expect("transitive inversion finding");
    assert_eq!(
        transitive.line,
        line_of("lock_order", "src/lib.rs", "self.helper_locks_a()")
    );
    assert_eq!(transitive.call_path.len(), 2, "{:?}", transitive.call_path);
    assert!(
        transitive.call_path[0].contains("inverted_via_call"),
        "{:?}",
        transitive.call_path
    );
    assert!(
        transitive.call_path[1].contains("helper_locks_a"),
        "{:?}",
        transitive.call_path
    );
    // `in_order` and `scoped_reacquire` stayed silent (count == 2 above).
}

#[test]
fn error_surface_fixture_flags_stringly_apis_and_matchable_enums() {
    let report = fixture("error_surface");
    let found = rule_findings(&report, RuleId::ErrorSurface);
    assert_eq!(report.findings.len(), 4, "only error_surface fires here");
    assert_eq!(found.len(), 4, "{found:?}");
    for (needle, msg_part) in [
        ("pub enum FixtureError", "non_exhaustive"),
        ("pub fn stringly", "String"),
        ("pub fn boxed", "Box<dyn std::error::Error>"),
        ("pub fn str_ref", "str"),
    ] {
        let want = line_of("error_surface", "src/lib.rs", needle);
        assert!(
            found
                .iter()
                .any(|(_, line, msg)| *line == want && msg.contains(msg_part)),
            "no finding at line {want} mentioning {msg_part:?}: {found:?}"
        );
    }
    // `typed`, `uses_private`, `private_stringly`, and `GoodError`
    // are all negative cases — the count of 4 proves they stayed silent.
}

#[test]
fn binary_exit_codes_gate_ci() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let status = |name: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_phylint"))
            .args(["--root"])
            .arg(fixtures.join(name))
            .output()
            .expect("phylint binary runs")
    };
    let clean = status("clean");
    assert_eq!(clean.status.code(), Some(0), "clean tree exits 0");
    let dirty = status("panic_path");
    assert_eq!(dirty.status.code(), Some(1), "findings exit 1");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(
        stdout.contains("src/lib.rs:") && stdout.contains("[panic_path]"),
        "diagnostics carry file:line spans and the rule name:\n{stdout}"
    );
    assert!(stdout.contains("phylint: summary {"), "machine summary line:\n{stdout}");
}

#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = run(&root).expect("workspace scan succeeds");
    assert!(
        report.is_clean(),
        "the workspace must pass its own lint, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("  {f}\n"))
            .collect::<String>()
    );
    assert!(report.files_scanned > 100, "walker saw the whole workspace");
}
