//! The machine-readable leg: the schema-v1 JSON report must
//! round-trip through phylint's own parser/validator, both in-process
//! and through the binary `--format json` / `--out` paths CI uses.

use std::path::Path;

use phylint::json::{self, Value};
use phylint::{run, Finding, Report, RuleId};

fn fixture(name: &str) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    run(&root).expect("fixture tree readable")
}

#[test]
fn report_round_trips_through_the_schema_validator() {
    let report = fixture("lock_order");
    assert_eq!(report.findings.len(), 2, "fixture precondition");
    let text = json::report_to_json(&report);
    let v = json::validate_schema(&text).expect("emitted JSON matches schema v1");

    assert_eq!(v.get("schema").and_then(Value::as_num), Some(1.0));
    assert_eq!(
        v.get("files_scanned").and_then(Value::as_num),
        Some(report.files_scanned as f64)
    );
    let counts = v.get("counts").expect("counts object");
    assert_eq!(
        counts.get("lock_order").and_then(Value::as_num),
        Some(2.0),
        "per-rule counts survive serialisation"
    );
    let findings = v.get("findings").and_then(Value::as_arr).expect("findings array");
    assert_eq!(findings.len(), report.findings.len());
    for (got, want) in findings.iter().zip(&report.findings) {
        assert_eq!(got.get("rule").and_then(Value::as_str), Some(want.rule.name()));
        assert_eq!(
            got.get("path").and_then(Value::as_str),
            Some(want.path.display().to_string().as_str())
        );
        assert_eq!(
            got.get("line").and_then(Value::as_num),
            Some(f64::from(want.line))
        );
        assert_eq!(got.get("msg").and_then(Value::as_str), Some(want.msg.as_str()));
        let cp = got.get("call_path").and_then(Value::as_arr).expect("call_path array");
        let cp: Vec<&str> = cp.iter().filter_map(Value::as_str).collect();
        let want_cp: Vec<&str> = want.call_path.iter().map(String::as_str).collect();
        assert_eq!(cp, want_cp, "proving call path survives the round trip");
    }
}

#[test]
fn findings_serialise_one_per_line_for_baseline_diffing() {
    let report = fixture("error_surface");
    let text = json::report_to_json(&report);
    let finding_lines: Vec<&str> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("{\"rule\":"))
        .collect();
    assert_eq!(
        finding_lines.len(),
        report.findings.len(),
        "each finding on its own line so `diff` against a baseline works"
    );
    for line in finding_lines {
        json::parse(line.trim_end_matches(','))
            .expect("every finding line is standalone valid JSON");
    }
}

#[test]
fn escaping_survives_a_round_trip() {
    let mut f = Finding::new(
        RuleId::LockOrder,
        Path::new("crates/x/src/lib.rs").into(),
        7,
        "quotes \" backslash \\ newline \n tab \t control \u{1} done".to_string(),
    );
    f.call_path = vec!["hot_entry (src/lib.rs:20)".to_string()];
    let line = json::finding_to_json(&f);
    assert!(!line.contains('\n'), "finding JSON stays on one line");
    let v = json::parse(&line).expect("parses");
    assert_eq!(v.get("msg").and_then(Value::as_str), Some(f.msg.as_str()));
    assert_eq!(
        v.get("call_path")
            .and_then(Value::as_arr)
            .and_then(|a| a[0].as_str()),
        Some("hot_entry (src/lib.rs:20)")
    );
}

#[test]
fn parser_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "{\"a\":}",
        "[1,2",
        "\"unterminated",
        "{\"a\":1} trailing",
    ] {
        assert!(json::parse(bad).is_err(), "accepted malformed {bad:?}");
    }
    assert!(
        json::validate_schema("{\"schema\":999}").is_err(),
        "wrong schema version must be rejected"
    );
    assert!(
        json::validate_schema("{\"schema\":1,\"files_scanned\":1}").is_err(),
        "missing required keys must be rejected"
    );
}

#[test]
fn binary_json_format_carries_findings_and_exit_code() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/simd_guard");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_phylint"))
        .args(["--root"])
        .arg(&root)
        .args(["--format", "json"])
        .output()
        .expect("phylint binary runs");
    assert_eq!(out.status.code(), Some(1), "findings still exit 1 in JSON mode");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let v = json::validate_schema(&stdout).expect("binary output matches schema v1");
    let counts = v.get("counts").expect("counts");
    assert_eq!(counts.get("simd_guard").and_then(Value::as_num), Some(2.0));
    let findings = v.get("findings").and_then(Value::as_arr).expect("findings");
    assert_eq!(findings.len(), 2);
    assert!(
        findings.iter().any(|f| {
            f.get("call_path")
                .and_then(Value::as_arr)
                .is_some_and(|cp| !cp.is_empty())
        }),
        "the unguarded-call finding ships its proving call path"
    );
}

#[test]
fn out_flag_archives_json_while_stdout_stays_human() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/clean");
    let out_path = std::env::temp_dir().join("phylint_json_output_test.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_phylint"))
        .args(["--root"])
        .arg(&root)
        .args(["--out"])
        .arg(&out_path)
        .output()
        .expect("phylint binary runs");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("phylint: summary {"),
        "stdout keeps the human report:\n{stdout}"
    );
    let archived = std::fs::read_to_string(&out_path).expect("--out wrote the file");
    let _ = std::fs::remove_file(&out_path);
    let v = json::validate_schema(&archived).expect("archived JSON matches schema v1");
    let findings = v.get("findings").and_then(Value::as_arr).expect("findings");
    assert!(findings.is_empty(), "clean tree archives an empty findings array");
}

/// The invocation CI gates on: the whole workspace, machine format.
#[test]
fn workspace_json_self_check_is_clean_and_valid() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_phylint"))
        .args(["--root"])
        .arg(&root)
        .args(["--format", "json"])
        .output()
        .expect("phylint binary runs");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let v = json::validate_schema(&stdout).expect("workspace report matches schema v1");
    let findings = v.get("findings").and_then(Value::as_arr).expect("findings");
    assert!(
        findings.is_empty(),
        "the workspace must be finding-free:\n{stdout}"
    );
    assert_eq!(out.status.code(), Some(0), "clean workspace exits 0");
    let counts = v.get("counts").expect("counts");
    for rule in phylint::ALL_RULES {
        assert_eq!(
            counts.get(rule.name()).and_then(Value::as_num),
            Some(0.0),
            "rule {} must report zero findings",
            rule.name()
        );
    }
}
