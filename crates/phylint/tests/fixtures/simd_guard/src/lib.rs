//! Deliberately dirty: one unguarded call to a `#[target_feature]`
//! kernel, and one kernel that hides its precondition by not being
//! `unsafe`. The guarded dispatcher is the negative case.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// SAFETY: caller must prove AVX2 support at runtime.
pub unsafe fn kernel(xs: &mut [u32]) {
    for x in xs.iter_mut() {
        *x = x.wrapping_mul(3);
    }
}

#[target_feature(enable = "avx2")]
pub fn sneaky_kernel(xs: &mut [u32]) {
    for x in xs.iter_mut() {
        *x = x.wrapping_add(7);
    }
}

pub fn dispatch(xs: &mut [u32]) {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: the branch above proved AVX2 support.
        unsafe { kernel(xs) }
    }
}

pub fn unguarded(xs: &mut [u32]) {
    // SAFETY: none — this is the planted violation.
    unsafe { kernel(xs) };
}
