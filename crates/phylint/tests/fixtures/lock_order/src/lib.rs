//! Deliberately dirty: the canonical order is declaration order —
//! `a` (rank 0) before `b` (rank 1). `in_order` respects it;
//! `inverted_direct` swaps it inline, and `inverted_via_call` holds
//! `b` across a call whose callee acquires `a` — only the call graph
//! sees that one. `scoped_reacquire` shows a guard dropped at block
//! close does not poison later acquisitions.

use std::sync::Mutex;

pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

impl Shared {
    pub fn in_order(&self) -> u32 {
        let Ok(ga) = self.a.lock() else { return 0 };
        let Ok(gb) = self.b.lock() else { return 0 };
        ga.wrapping_add(*gb)
    }

    pub fn inverted_direct(&self) -> u32 {
        let Ok(outer) = self.b.lock() else { return 0 };
        let Ok(inner) = self.a.lock() else { return 0 };
        inner.wrapping_add(*outer)
    }

    pub fn helper_locks_a(&self) -> u32 {
        let Ok(only) = self.a.lock() else { return 0 };
        *only
    }

    pub fn inverted_via_call(&self) -> u32 {
        let Ok(held) = self.b.lock() else { return 0 };
        held.wrapping_add(self.helper_locks_a())
    }

    pub fn scoped_reacquire(&self) -> u32 {
        let first = {
            let Ok(ga) = self.a.lock() else { return 0 };
            *ga
        };
        let Ok(ga) = self.a.lock() else { return 0 };
        first.wrapping_add(*ga)
    }
}
