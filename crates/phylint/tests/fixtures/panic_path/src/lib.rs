//! Deliberately dirty: naked panic paths in crate source, in a module
//! that also opted into the strict `[idx]` denial.
// phylint: datapath

pub fn naked_unwrap(v: Option<u8>) -> u8 {
    v.unwrap()
}

pub fn naked_expect(v: Option<u8>) -> u8 {
    v.expect("boom")
}

pub fn panics() {
    panic!("bad");
}

pub fn stub() {
    todo!()
}

pub fn index(xs: &[u8]) -> u8 {
    xs[0]
}
