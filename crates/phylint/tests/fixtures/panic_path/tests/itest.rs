//! Integration tests may unwrap freely: the panic-path audit only
//! fires on crate source.

#[test]
fn unwrap_in_integration_tests_is_fine() {
    assert_eq!(Some(1).unwrap(), 1);
    let v: Vec<u8> = Vec::new();
    assert_eq!(v.first(), None);
}
