//! Deliberately dirty: public `Result` APIs with stringly/opaque
//! error payloads, and a public error enum callers could exhaustively
//! match. Typed and private counterparts are the negative cases.

pub enum FixtureError {
    Bad,
}

#[non_exhaustive]
pub enum GoodError {
    Bad,
}

pub fn stringly() -> Result<u32, String> {
    Ok(1)
}

pub fn boxed() -> Result<u32, Box<dyn std::error::Error>> {
    Ok(2)
}

pub fn str_ref() -> Result<u32, &'static str> {
    Ok(3)
}

pub fn typed() -> Result<u32, GoodError> {
    Ok(4)
}

fn private_stringly() -> Result<u32, String> {
    Ok(5)
}

pub fn uses_private() -> Result<u32, GoodError> {
    private_stringly().map_err(|_| GoodError::Bad)
}
