//! Clean fixture: every construct in this tree is legal under every
//! rule, including the lexer traps — denied names inside strings,
//! comments, raw strings and nested block comments must not fire.

/// Strings are not code: the denied names below are literal text.
pub const DOC: &str = "call .unwrap() or panic! — this is a string";
/// Raw strings with embedded quotes are one token.
pub const RAW: &str = r#"raw string with "quotes" and .expect("msg")"#;
/// Byte strings too.
pub const BYTES: &[u8] = b"bytes with .unwrap()";

// A line comment mentioning .unwrap(), vec! and todo! is just prose.
/* block comment: .expect("nope")
   /* nested block comment: panic!("still a comment") */
   todo!() in prose */

/// Char literals and lifetimes must not confuse the lexer.
pub fn lifetimes<'a>(s: &'a str) -> (&'a str, char) {
    (s, '\'')
}

#[cfg(feature = "turbo")]
pub fn gated() {}

// phylint: hot
/// Steady-state loop: slices, arithmetic, no allocation.
pub fn accumulate(xs: &[i32], out: &mut [i32]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o += *x;
    }
}
// phylint: end-hot

/// Allocation outside the hot region is fine.
pub fn allocate(xs: &[i32]) -> Vec<i32> {
    let mut v = vec![1, 2, 3];
    v.extend(xs.iter().map(|x| x + 1));
    v.iter().map(|x| x * 2).collect()
}

/// SAFETY: `p` is non-null, aligned and points to a live `i32` per
/// the caller contract stated on the function.
pub unsafe fn read_raw(p: *const i32) -> i32 {
    unsafe { *p } // SAFETY: caller contract upheld, see above
}

/// A justified suppression: trailing form covers its own line.
pub fn justified(opt: Option<u8>) -> u8 {
    opt.unwrap() // phylint: allow(panic_path) -- fixture pins the trailing-suppression form
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_unit_tests_is_fine() {
        let v: Option<u8> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let w: Vec<u8> = Vec::new();
        assert!(w.is_empty());
    }
}

#[cfg(not(test))]
pub fn compiled_outside_tests() {}
