//! Strict datapath module: opted into the `[idx]` denial and clean
//! under it — access is via `.get`/iterators only.
// phylint: datapath

/// Head element without indexing.
pub fn head(xs: &[i32]) -> i32 {
    xs.first().copied().unwrap_or(0)
}

/// Iterator summation, no slices indexed.
pub fn sum(xs: &[i32]) -> i64 {
    let mut acc = 0i64;
    for &x in xs {
        acc += i64::from(x);
    }
    acc
}
