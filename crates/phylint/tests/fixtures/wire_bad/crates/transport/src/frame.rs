//! Fixture frame constants, shaped like the real transport codec.

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"CQ15";
/// Data-frame header: magic + seq + stream count + samples/stream.
pub const HEADER_LEN: usize = 4 + 4 + 1 + 2;
/// One CQ15 sample on the wire.
pub const BYTES_PER_SAMPLE: usize = 4;
/// Most streams a data frame may carry.
pub const MAX_STREAMS: usize = 8;
/// CRC-32 trailer length.
pub const CRC_LEN: usize = 4;
/// Control frames are fixed length: magic + seq + tag + value + CRC.
pub const CONTROL_FRAME_LEN: usize = 4 + 4 + 1 + 8 + CRC_LEN;

/// Control tags.
pub const TYPE_CREDIT: u8 = 0xC1;
/// Liveness.
pub const TYPE_HEARTBEAT: u8 = 0xC2;
/// Session open.
pub const TYPE_HELLO: u8 = 0xC3;
/// Session accept.
pub const TYPE_RESET: u8 = 0xC4;
/// Session close.
pub const TYPE_BYE: u8 = 0xC5;
