//! Fixture doc tables with one deliberate drift: the control-frame
//! heading claims 22 bytes while `CONTROL_FRAME_LEN` is 21.
//!
//! The dispatch byte at offset 8 is a stream count `1..=8` for data
//! frames and a tag in `0xC1..=0xC5` for control frames.
//!
//! **Data frame** (variable length):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"CQ15"` |
//! | 4      | 4    | sequence number, u32 LE |
//! | 8      | 1    | stream count `1..=8` |
//! | 9      | 2    | samples per stream, u16 LE |
//! | 11     | 4·n·s| payload: per-stream i16 LE (I,Q) pairs |
//! | …      | 4    | CRC-32, u32 LE |
//!
//! **Control frame** (fixed 22 bytes):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 4    | magic `"CQ15"` |
//! | 4      | 4    | sequence number, u32 LE |
//! | 8      | 1    | type: CREDIT `0xC1`, HEARTBEAT `0xC2`, HELLO `0xC3`, RESET `0xC4`, BYE `0xC5` |
//! | 9      | 8    | value, u64 LE |
//! | 17     | 4    | CRC-32, u32 LE |

pub mod frame;
