//! Deliberately dirty: marker-syntax errors — a stale suppression, an
//! unknown directive, and a suppression with no justification.

// phylint: allow(panic_path) -- nothing on the next line panics, so this is stale
pub fn fine() -> u8 {
    7
}

// phylint: frobnicate
pub fn also_fine() {}

// phylint: allow(alloc_hot)
pub fn third() {}
