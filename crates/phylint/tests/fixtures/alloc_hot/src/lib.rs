//! Deliberately dirty: every denied allocator inside one hot region.
//! The identical constructs in `cold` (outside the region) must not
//! fire.

pub fn cold(xs: &[u8]) -> Vec<u8> {
    let mut v = vec![0; 4];
    v.extend(xs.to_vec());
    v
}

// phylint: hot
pub fn hot(xs: &[u8]) -> usize {
    let mut v = Vec::new();
    v.extend(xs.iter().map(|x| x + 1));
    let s = format!("{}", xs.len());
    let t = s.to_string();
    let w = xs.to_vec();
    let b = Box::new(0u8);
    let c: Vec<u8> = xs.iter().copied().collect();
    v.len() + t.len() + w.len() + c.len() + usize::from(*b)
}
// phylint: end-hot
