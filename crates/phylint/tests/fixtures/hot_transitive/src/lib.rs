//! Deliberately dirty: a helper two calls away from the hot region
//! allocates. The literal region text is clean, so only the
//! call-graph rule can see it. `pure_leaf` proves reachable-but-clean
//! functions stay silent.

pub fn leaf_alloc(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

pub fn middle(n: usize) -> Vec<u8> {
    leaf_alloc(n)
}

pub fn pure_leaf(x: u32) -> u32 {
    x.wrapping_add(1)
}

// phylint: hot
pub fn hot_entry(x: u32) -> u32 {
    let v = middle(4);
    pure_leaf(x).wrapping_add(v.len() as u32)
}
// phylint: end-hot
