//! Deliberately dirty: `unsafe` without a SAFETY comment. The first
//! function shows both accepted forms (block above, trailing).

/// SAFETY: `p` is non-null, aligned and live per the caller contract.
pub unsafe fn justified(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: caller contract upheld, see above
}

pub unsafe fn bare(p: *const u8) -> u8 {
    unsafe { *p }
}
