//! Deliberately dirty: one `cfg(feature = …)` names a feature the
//! manifest never declares.

#[cfg(feature = "real")]
pub fn gated() {}

#[cfg(feature = "imaginary")]
pub fn ghost() {}
