//! Lexer edge cases: the constructs that defeat naive regex scanning
//! must classify correctly, or every rule built on the token stream
//! lies.

use phylint::lexer::{lex, TokKind};

fn kinds_and_texts(src: &str) -> Vec<(TokKind, String)> {
    let lexed = lex(src);
    lexed
        .tokens
        .iter()
        .map(|t| (t.kind, lexed.text(src, t).to_string()))
        .collect()
}

#[test]
fn denied_names_inside_strings_are_one_str_token() {
    let toks = kinds_and_texts(r#"let s = "x.unwrap() and panic!";"#);
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("unwrap")));
    assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unwrap"));
}

#[test]
fn raw_strings_with_quotes_and_hash_fences() {
    let src = r###"let s = r#"inner "quoted" .expect("msg")"#; let t = 1;"###;
    let toks = kinds_and_texts(src);
    assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "expect"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("quoted")));
    // Lexing continues correctly after the fence.
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "t"));
}

#[test]
fn raw_identifier_is_ident_not_string() {
    let toks = kinds_and_texts("fn r#match() { r#match() }");
    let raws: Vec<_> = toks.iter().filter(|(_, t)| t == "r#match").collect();
    assert_eq!(raws.len(), 2);
    assert!(raws.iter().all(|(k, _)| *k == TokKind::Ident));
}

#[test]
fn nested_block_comments_are_one_comment() {
    let src = "/* outer /* inner .unwrap() */ still comment */ fn f() {}";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 1);
    assert!(!lexed
        .tokens
        .iter()
        .any(|t| lexed.text(src, t) == "unwrap"));
    assert!(lexed.tokens.iter().any(|t| lexed.text(src, t) == "f"));
}

#[test]
fn char_literal_vs_lifetime() {
    let toks = kinds_and_texts(r"fn f<'a>(x: &'a str) -> char { '\'' }");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == r"'\''"));
}

#[test]
fn numbers_stop_at_ranges_and_method_calls() {
    let toks = kinds_and_texts("for i in 0..10 { let x = 1.5e-3; let y = 2.pow(3); }");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "0"));
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "10"));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Number && t == "1.5e-3"));
    // `2.pow` must not swallow `pow` into the number.
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "pow"));
}

#[test]
fn hex_and_separators() {
    let toks = kinds_and_texts("const A: u8 = 0xC1; const B: u32 = 1_000;");
    assert!(toks.iter().any(|(k, t)| *k == TokKind::Number && t == "0xC1"));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokKind::Number && t == "1_000"));
}

#[test]
fn trailing_vs_own_line_comments() {
    let src = "let x = 1; // trailing\n// standalone\nlet y = 2;\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert!(!lexed.comments[0].own_line);
    assert!(lexed.comments[1].own_line);
    assert_eq!(lexed.comments[1].line, 2);
}

#[test]
fn token_lines_are_one_based_and_accurate() {
    let src = "fn a() {}\n\nfn b() {}\n";
    let lexed = lex(src);
    let b = lexed
        .tokens
        .iter()
        .find(|t| lexed.text(src, t) == "b")
        .expect("token b");
    assert_eq!(b.line, 3);
}
