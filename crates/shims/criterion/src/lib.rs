//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion API this workspace's bench
//! targets use — `Criterion`, `bench_function`, `benchmark_group` with
//! `Throughput`, `Bencher::iter`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock measurement loop: warm up briefly, then run batches until
//! a time budget is spent and report the median per-iteration time.
//!
//! Reports go to stderr in a compact one-line-per-benchmark format:
//!
//! ```text
//! bench fig1_throughput/qam16_r12 ... median 1.234 ms (842 iters), 162.1 Melem/s
//! ```

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement settings shared by a `Criterion` instance.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Shortens warm-up and measurement windows (smoke-test mode).
    pub fn with_quick_mode(mut self) -> Self {
        self.settings.warm_up = Duration::from_millis(50);
        self.settings.measurement = Duration::from_millis(250);
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement = d;
        self
    }

    /// Overrides the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.settings, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput label.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the group's measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Overrides the group's sample count (accepted for API
    /// compatibility; the shim sizes batches by time, not count).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.settings, self.throughput, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Hands the measured closure to the benchmark body.
pub struct Bencher {
    /// Iterations the measured closure should run.
    iters: u64,
    /// Total time the measured closure spent.
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// One complete benchmark: warm-up, batch-size calibration, sampling,
/// median report.
fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up and calibration: grow the batch until one batch takes
    // ~1/50 of the measurement window.
    let mut iters = 1u64;
    let mut per_iter;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter = b.elapsed.checked_div(iters as u32).unwrap_or_default();
        if warm_start.elapsed() >= settings.warm_up {
            break;
        }
        let target = settings.measurement / 50;
        if b.elapsed < target {
            iters = iters.saturating_mul(2);
        }
    }
    let target_batch = settings.measurement / 50;
    if per_iter > Duration::ZERO {
        let fit = target_batch.as_nanos() / per_iter.as_nanos().max(1);
        iters = (fit as u64).clamp(1, u64::MAX);
    }

    // Sampling.
    let mut samples: Vec<f64> = Vec::new();
    let sample_start = Instant::now();
    let mut total_iters = 0u64;
    while sample_start.elapsed() < settings.measurement || samples.len() < 5 {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
        total_iters += iters;
        if samples.len() >= 5000 {
            break;
        }
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];

    let mut line = format!(
        "bench {id} ... median {} ({total_iters} iters)",
        format_time(median)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if median > 0.0 {
            line.push_str(&format!(
                ", {} {unit}/s",
                format_rate(count as f64 / median)
            ));
        }
    }
    eprintln!("{line}");
}

/// `12.3 ns` / `4.56 µs` / `7.89 ms` / `1.23 s` formatting.
fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// `123.4 k` / `56.78 M` / `9.01 G` rate formatting.
fn format_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.2} G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} k", per_second / 1e3)
    } else {
        format!("{per_second:.2} ")
    }
}

/// Groups benchmark functions under one runner (criterion API).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = if ::std::env::var_os("QUICK_BENCH").is_some() {
                $crate::Criterion::default().with_quick_mode()
            } else {
                $crate::Criterion::default()
            };
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups (criterion API).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_closure() {
        let settings = Settings {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(20),
        };
        let mut calls = 0u64;
        run_one("shim_smoke", settings, Some(Throughput::Elements(4)), &mut |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.5e-9), "2.500 ns");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5), "2.500 s");
    }
}
