//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace ships
//! the small subset of the `rand 0.8` API it actually uses as a local
//! shim: the [`RngCore`] source-of-entropy trait and the [`Rng`]
//! extension trait with `gen` / `gen_range` / `gen_bool`. Generators
//! themselves live in the sibling `rand_chacha` shim.
//!
//! The shim is API-compatible for the call sites in this repository but
//! makes no attempt to be value-compatible with upstream `rand`: seeds
//! produce a deterministic stream, just not the same stream upstream
//! would produce.

use std::ops::Range;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

/// Types that can be drawn uniformly from an [`RngCore`] — the shim's
/// equivalent of sampling `Standard`.
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::random(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; fold it back.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait: every [`RngCore`] is an [`Rng`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of an inferred type.
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::random(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a finalizer: cheap but well mixed.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_range_stays_inside() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.25..0.75);
            assert!((-0.25..0.75).contains(&v), "{v}");
        }
    }

    #[test]
    fn int_range_stays_inside_and_covers() {
        let mut rng = Counter(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn gen_infers_common_types() {
        let mut rng = Counter(3);
        let _: u8 = rng.gen();
        let _: u64 = rng.gen();
        let f: f64 = rng.gen();
        assert!((0.0..1.0).contains(&f));
    }
}
