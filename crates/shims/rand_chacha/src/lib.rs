//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (D. J. Bernstein's
//! ChaCha reduced to 8 rounds — the same core the real crate wraps)
//! behind the two items this workspace imports: [`ChaCha8Rng`] and
//! [`rand_core::SeedableRng`]. Like the `rand` shim it is
//! API-compatible, not stream-compatible, with upstream.

use rand::RngCore;

/// The `rand_core` re-export surface the workspace uses.
pub mod rand_core {
    /// Seedable generators (shim: only `seed_from_u64` is provided).
    pub trait SeedableRng: Sized {
        /// Builds a generator from a 64-bit seed, expanding it with
        /// SplitMix64 exactly as `rand_core` does.
        fn seed_from_u64(seed: u64) -> Self;
    }
}

/// One ChaCha quarter-round.
#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher core with 8 double-…(4 column + 4 diagonal)
/// rounds, used as a deterministic PRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words), counter (2 words) and nonce (2 words).
    key: [u32; 8],
    counter: u64,
    /// Current output block and the read cursor into it.
    block: [u32; 16],
    cursor: usize,
}

impl ChaCha8Rng {
    const ROUNDS: usize = 8;
    /// "expand 32-byte k" in little-endian words.
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

    /// Builds a generator from a 32-byte key (the ChaCha key slot).
    pub fn from_seed_bytes(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16, // force a refill on first use
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&Self::SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: one seed = one stream.
        let input = state;
        for _ in 0..Self::ROUNDS / 2 {
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl rand_core::SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as in upstream rand_core.
        let mut state = seed;
        let mut bytes = [0u8; 32];
        for chunk in bytes.chunks_exact_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed_bytes(bytes)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::rand_core::SeedableRng;
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha20_reference_block() {
        // RFC 7539 §2.3.2 test vector, adapted: run the permutation at
        // 20 rounds over the RFC's key/counter/nonce and compare the
        // first output words. We reuse the internals with ROUNDS
        // generalized by hand here to guard the quarter-round wiring.
        let mut state = [
            0x6170_7865u32,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            0x0302_0100,
            0x0706_0504,
            0x0B0A_0908,
            0x0F0E_0D0C,
            0x1312_1110,
            0x1716_1514,
            0x1B1A_1918,
            0x1F1E_1D1C,
            0x0000_0001,
            0x0900_0000,
            0x4A00_0000,
            0x0000_0000,
        ];
        let input = state;
        for _ in 0..10 {
            quarter(&mut state, 0, 4, 8, 12);
            quarter(&mut state, 1, 5, 9, 13);
            quarter(&mut state, 2, 6, 10, 14);
            quarter(&mut state, 3, 7, 11, 15);
            quarter(&mut state, 0, 5, 10, 15);
            quarter(&mut state, 1, 6, 11, 12);
            quarter(&mut state, 2, 7, 8, 13);
            quarter(&mut state, 3, 4, 9, 14);
        }
        for (s, i) in state.iter_mut().zip(&input) {
            *s = s.wrapping_add(*i);
        }
        assert_eq!(state[0], 0xE4E7_F110);
        assert_eq!(state[1], 0x1559_3BD1);
        assert_eq!(state[15], 0x4E3C_50A2);
    }

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniformity_smoke_test() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
