//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this shim provides
//! the slice of the proptest API the workspace's property tests use:
//! [`Strategy`] with `prop_map`, range/tuple/`Just`/`any` strategies,
//! [`collection::vec`], `prop_oneof!`, the `proptest!` test macro and
//! the `prop_assert*` / `prop_assume!` assertion macros.
//!
//! Semantics: each test runs `cases` random cases (default 256) from a
//! ChaCha8 stream seeded deterministically per test, so failures
//! reproduce run-to-run. Unlike real proptest there is **no
//! shrinking** — a failing case reports its values via the assertion
//! message only.

use std::fmt;
use std::ops::Range;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection with a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct OneOf<S> {
    options: Vec<S>,
}

impl<S> OneOf<S> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut ChaCha8Rng) -> S::Value {
        let idx = rng.gen_range(0usize..self.options.len());
        self.options[idx].new_value(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut ChaCha8Rng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0);
impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy drawing a type's full value range.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Default for AnyStrategy<T> {
    fn default() -> Self {
        Self {
            _marker: std::marker::PhantomData,
        }
    }
}

macro_rules! impl_arbitrary_via_rng {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen()
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy::default()
            }
        }
    )*};
}

impl_arbitrary_via_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut ChaCha8Rng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut ChaCha8Rng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut ChaCha8Rng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy generating `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: vectors of `element` with length
    /// drawn from `len` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// The `prop::` namespace as re-exported by the prelude.
pub mod prop {
    /// Sampling helpers.
    pub mod sample {
        use super::super::*;

        /// An index into a collection whose length is only known at
        /// use-time (`any::<prop::sample::Index>()`).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Projects onto `0..len`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        /// Strategy for [`Index`].
        pub struct IndexStrategy;

        impl Strategy for IndexStrategy {
            type Value = Index;

            fn new_value(&self, rng: &mut ChaCha8Rng) -> Index {
                Index(rng.gen())
            }
        }

        impl Arbitrary for Index {
            type Strategy = IndexStrategy;

            fn arbitrary() -> Self::Strategy {
                IndexStrategy
            }
        }
    }
}

/// Drives one generated test: `cases` iterations of sample-and-run.
///
/// Not part of the public proptest API; called by the `proptest!`
/// expansion. Rejections (from `prop_assume!`) are retried and do not
/// count toward the case budget, up to a global rejection cap.
pub fn run_property_test<S, F>(name: &str, config: &ProptestConfig, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
    S::Value: fmt::Debug + Clone,
{
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut rejections = 0u32;
    let max_rejections = config.cases.saturating_mul(16).max(1024);
    let mut case = 0u32;
    while case < config.cases {
        let value = strategy.new_value(&mut rng);
        match test(value.clone()) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejections += 1;
                if rejections > max_rejections {
                    panic!(
                        "{name}: too many prop_assume! rejections \
                         ({rejections}) for {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: case {case} failed with input {value:?}: {msg}");
            }
        }
    }
}

/// Everything a property test file imports.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "{}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Rejects the current inputs (the case is re-drawn, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($strategy),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` block
/// becomes a `#[test]` running many random cases.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(unused_parens)]
            fn $name() {
                let config = $config;
                $crate::run_property_test(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    ($($strategy,)+),
                    |($($arg,)+)| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = i64> {
        -100i64..100
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in small(), y in 0.0f64..1.0) {
            prop_assert!((-100..100).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_vecs(pairs in collection::vec((0u8..4, 0u8..4), 1..17)) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 17);
            for (a, b) in pairs {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn oneof_and_just((n, m) in prop_oneof![Just((1usize, 2usize)), Just((3, 4))]) {
            prop_assert!(n == 1 && m == 2 || n == 3 && m == 4);
        }

        #[test]
        fn assume_filters(x in -10i32..10) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn index_projects(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_form_parses(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_input() {
        crate::run_property_test(
            "failures_panic_with_input",
            &ProptestConfig::with_cases(16),
            (0u8..2,),
            |(_x,)| -> TestCaseResult { prop_assert!(false, "always fails"); Ok(()) },
        );
    }
}
