//! Double-precision reference FFT (iterative radix-2, natural order).

use mimo_fixed::Cf64;

/// In-place bit-reversal permutation.
fn bit_reverse(data: &mut [Cf64]) {
    let n = data.len();
    let mut j = 0usize;
    for i in 0..n {
        if i < j {
            data.swap(i, j);
        }
        let mut m = n >> 1;
        while m >= 1 && j & m != 0 {
            j ^= m;
            m >>= 1;
        }
        j |= m;
    }
}

fn transform(data: &mut [Cf64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two: {n}");
    bit_reverse(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Cf64::from_polar(1.0, ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Cf64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for x in data.iter_mut() {
            *x = x.scale(scale);
        }
    }
}

/// Forward DFT (no normalization): `X[k] = Σ x[n]·e^{-j2πkn/N}`.
///
/// This is the receiver-side reference transform.
///
/// # Panics
///
/// Panics if the length is not a power of two.
///
/// # Examples
///
/// ```
/// use mimo_fixed::Cf64;
/// use mimo_fft::fft_f64;
///
/// let mut x = vec![Cf64::ZERO; 8];
/// x[0] = Cf64::ONE; // impulse
/// fft_f64(&mut x);
/// for bin in &x {
///     assert!((bin.re - 1.0).abs() < 1e-12 && bin.im.abs() < 1e-12);
/// }
/// ```
pub fn fft_f64(data: &mut [Cf64]) {
    transform(data, false);
}

/// Inverse DFT with 1/N normalization: `x[n] = (1/N)·Σ X[k]·e^{j2πkn/N}`.
///
/// This is the transmitter-side reference transform.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_f64(data: &mut [Cf64]) {
    transform(data, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, k: usize) -> Vec<Cf64> {
        (0..n)
            .map(|i| Cf64::from_polar(1.0, 2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64))
            .collect()
    }

    #[test]
    fn dc_concentrates_in_bin_zero() {
        let mut x = vec![Cf64::ONE; 64];
        fft_f64(&mut x);
        assert!((x[0].re - 64.0).abs() < 1e-9);
        for bin in &x[1..] {
            assert!(bin.norm() < 1e-9);
        }
    }

    #[test]
    fn single_tone_hits_single_bin() {
        let mut x = tone(64, 5);
        fft_f64(&mut x);
        for (k, bin) in x.iter().enumerate() {
            if k == 5 {
                assert!((bin.re - 64.0).abs() < 1e-9);
            } else {
                assert!(bin.norm() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let n = 128;
        let orig: Vec<Cf64> = (0..n)
            .map(|i| Cf64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut x = orig.clone();
        fft_f64(&mut x);
        ifft_f64(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-10);
            assert!((a.im - b.im).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 64;
        let time: Vec<Cf64> = (0..n)
            .map(|i| Cf64::new((i as f64).sin() * 0.3, (i as f64 * 2.0).cos() * 0.2))
            .collect();
        let e_time: f64 = time.iter().map(|c| c.norm_sqr()).sum();
        let mut freq = time;
        fft_f64(&mut freq);
        let e_freq: f64 = freq.iter().map(|c| c.norm_sqr()).sum::<f64>() / n as f64;
        assert!((e_time - e_freq).abs() < 1e-9);
    }

    #[test]
    fn linearity() {
        let n = 32;
        let a: Vec<Cf64> = (0..n).map(|i| Cf64::new(i as f64 * 0.01, 0.0)).collect();
        let b: Vec<Cf64> = (0..n).map(|i| Cf64::new(0.0, (n - i) as f64 * 0.01)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        let mut fab: Vec<Cf64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        fft_f64(&mut fa);
        fft_f64(&mut fb);
        fft_f64(&mut fab);
        for k in 0..n {
            let sum = fa[k] + fb[k];
            assert!((fab[k] - sum).norm() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut x = vec![Cf64::ZERO; 48];
        fft_f64(&mut x);
    }
}
