//! Fixed-point FFT/IFFT cores and the double-precision reference
//! transform.
//!
//! The transmitter converts modulated symbols to the time domain
//! through one IFFT per antenna, and the receiver mirrors that with one
//! FFT per antenna (Figs 1 and 5 of the paper). The paper's cores are
//! 64-point (extensible to 512-point) streaming blocks with 16-bit
//! I/Q datapaths and per-stage scaling.
//!
//! * [`fft_f64`] / [`ifft_f64`] — reference transforms used to validate
//!   the fixed-point cores and to generate known-answer vectors.
//! * [`FixedFft`] — bit-accurate radix-2 decimation-in-time core in
//!   Q1.15 with a compensated per-stage right-shift (the block-scaling
//!   scheme used by vendor FFT megacores to prevent overflow).
//! * [`StreamingFft`] — wraps [`FixedFft`] with the handshake/latency
//!   behaviour of the hardware core (`sop`/`eop`-style framing, one
//!   sample per clock) for the cycle-accounting experiments.

mod fixed;
mod reference;
mod streaming;

pub use fixed::{FftError, FftScaling, FixedFft};
pub use reference::{fft_f64, ifft_f64};
pub use streaming::StreamingFft;

/// Returns `true` if `n` is a supported transform size (power of two,
/// at least 8, at most 4096).
pub fn is_supported_size(n: usize) -> bool {
    n.is_power_of_two() && (8..=4096).contains(&n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supported_sizes() {
        for n in [8usize, 64, 128, 256, 512, 1024, 4096] {
            assert!(is_supported_size(n), "{n}");
        }
        for n in [0usize, 1, 2, 4, 63, 96, 8192] {
            assert!(!is_supported_size(n), "{n}");
        }
    }
}
