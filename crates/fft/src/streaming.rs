//! Streaming FFT model with hardware framing and latency.
//!
//! The paper's FFT/IFFT cores are streaming megacore-style blocks: one
//! complex sample enters per clock, and a transformed frame begins to
//! emerge a fixed latency later, delimited by `sop`/`eop`-style flags.
//! [`StreamingFft`] reproduces that contract on top of [`FixedFft`] so
//! the cycle-accounting experiments (Experiment F7) can measure
//! realistic block latencies.

use std::collections::VecDeque;

use mimo_fixed::CQ15;

use crate::fixed::{FftError, FixedFft};

/// Direction of a streaming transform instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Inverse,
}

/// A streaming wrapper around [`FixedFft`]: accepts one sample per
/// clock and emits each transformed frame after the core's pipeline
/// latency, one sample per clock.
///
/// Latency model: a frame's first output appears
/// `N + 2·log2(N) + 4` clocks after its first input — the input
/// reorder buffer (N) plus butterfly pipeline stages — matching the
/// ballpark of vendor streaming FFT cores at 1 sample/cycle.
///
/// # Examples
///
/// ```
/// use mimo_fft::StreamingFft;
/// use mimo_fixed::CQ15;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fft = StreamingFft::forward(64)?;
/// let mut outputs = Vec::new();
/// // Feed an impulse frame then idle until the frame drains.
/// for cycle in 0..(64 + fft.latency_cycles() as usize + 64) {
///     let input = if cycle < 64 {
///         Some(if cycle == 0 { CQ15::from_f64(0.5, 0.0) } else { CQ15::ZERO })
///     } else {
///         None
///     };
///     if let Some(out) = fft.clock(input) {
///         outputs.push(out);
///     }
/// }
/// assert_eq!(outputs.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingFft {
    core: FixedFft,
    direction: Direction,
    /// Samples of the frame currently being collected.
    collecting: Vec<CQ15>,
    /// Computed frames waiting behind the pipeline delay:
    /// `(cycles_until_first_output, samples)`.
    in_flight: VecDeque<(u64, Vec<CQ15>)>,
    /// Frame currently draining out, reversed so `pop` yields in order.
    draining: Vec<CQ15>,
    /// Recycled frame buffers: drained frames return here so the
    /// steady-state streaming loop allocates nothing per frame.
    pool: Vec<Vec<CQ15>>,
    cycle: u64,
}

impl StreamingFft {
    /// Creates a streaming forward FFT (receiver side).
    ///
    /// # Errors
    ///
    /// Propagates [`FftError::UnsupportedSize`].
    pub fn forward(n: usize) -> Result<Self, FftError> {
        Ok(Self::with_core(FixedFft::new(n)?, Direction::Forward))
    }

    /// Creates a streaming inverse FFT (transmitter side).
    ///
    /// # Errors
    ///
    /// Propagates [`FftError::UnsupportedSize`].
    pub fn inverse(n: usize) -> Result<Self, FftError> {
        Ok(Self::with_core(FixedFft::new(n)?, Direction::Inverse))
    }

    fn with_core(core: FixedFft, direction: Direction) -> Self {
        let n = core.size();
        Self {
            core,
            direction,
            collecting: Vec::with_capacity(n),
            in_flight: VecDeque::with_capacity(4),
            draining: Vec::with_capacity(n),
            pool: Vec::new(),
            cycle: 0,
        }
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.core.size()
    }

    /// Clock cycles from a frame's first input sample to its first
    /// output sample.
    pub fn latency_cycles(&self) -> u32 {
        let n = self.core.size() as u32;
        n + 2 * n.trailing_zeros() + 4
    }

    /// Advances one clock cycle, optionally consuming an input sample,
    /// and produces an output sample when one is scheduled.
    pub fn clock(&mut self, input: Option<CQ15>) -> Option<CQ15> {
        let n = self.core.size();
        if let Some(sample) = input {
            if self.collecting.is_empty() {
                // Frame's first input: schedule its output start time.
                let ready_at = self.cycle + u64::from(self.latency_cycles());
                self.in_flight.push_back((ready_at, Vec::new()));
            }
            self.collecting.push(sample);
            if self.collecting.len() == n {
                // Transform into a recycled buffer: at steady state no
                // allocation happens per frame.
                let mut transformed = self.pool.pop().unwrap_or_else(|| vec![CQ15::ZERO; n]);
                transformed.resize(n, CQ15::ZERO);
                match self.direction {
                    Direction::Forward => self.core.fft_into(&self.collecting, &mut transformed),
                    Direction::Inverse => self.core.ifft_into(&self.collecting, &mut transformed),
                }
                // phylint: allow(panic_path) -- `collecting.len() == n` was checked two lines up and `transformed` was resized to `n`, the exact lengths `fft_into` requires
                .expect("frame length enforced by collection");
                self.collecting.clear();
                // Attach result to the oldest un-filled in-flight slot.
                let slot = self
                    .in_flight
                    .iter_mut()
                    .find(|(_, data)| data.is_empty())
                    // phylint: allow(panic_path) -- an empty slot is pushed when a frame's first sample arrives and filled exactly once when its last sample arrives, so one empty slot always exists here
                    .expect("slot was pushed at frame start");
                slot.1 = transformed;
            }
        }

        self.cycle += 1;

        if self.draining.is_empty()
            && self
                .in_flight
                .front()
                .is_some_and(|(ready_at, _)| self.cycle > *ready_at)
        {
            if let Some((_, mut data)) = self.in_flight.pop_front() {
                debug_assert_eq!(data.len(), n, "frame completed before latency elapsed");
                data.reverse();
                // Recycle the previous (now empty) draining buffer.
                let spent = std::mem::replace(&mut self.draining, data);
                if spent.capacity() > 0 && self.pool.len() < 4 {
                    self.pool.push(spent);
                }
            }
        }
        self.draining.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_model_value() {
        let fft = StreamingFft::forward(64).unwrap();
        assert_eq!(fft.latency_cycles(), 64 + 12 + 4);
        let fft = StreamingFft::forward(512).unwrap();
        assert_eq!(fft.latency_cycles(), 512 + 18 + 4);
    }

    #[test]
    fn first_output_exactly_at_latency() {
        let mut fft = StreamingFft::forward(64).unwrap();
        let latency = fft.latency_cycles() as u64;
        let mut first_out = None;
        for cycle in 0..2000u64 {
            let input = if cycle < 64 { Some(CQ15::from_f64(0.1, 0.0)) } else { None };
            if fft.clock(input).is_some() && first_out.is_none() {
                first_out = Some(cycle);
                break;
            }
        }
        assert_eq!(first_out, Some(latency));
    }

    #[test]
    fn streams_back_to_back_frames_without_loss() {
        let n = 64;
        let mut fft = StreamingFft::forward(n).unwrap();
        let frames = 5usize;
        let mut outputs = Vec::new();
        let total = frames * n + fft.latency_cycles() as usize + n;
        for cycle in 0..total {
            let input = if cycle < frames * n {
                Some(CQ15::from_f64(if cycle % n == 0 { 0.5 } else { 0.0 }, 0.0))
            } else {
                None
            };
            if let Some(out) = fft.clock(input) {
                outputs.push(out);
            }
        }
        assert_eq!(outputs.len(), frames * n);
        // Each frame is an impulse -> flat spectrum.
        let expected = 0.5 / 16.0;
        for out in &outputs {
            assert!((out.re.to_f64() - expected).abs() < 1e-3);
        }
    }

    #[test]
    fn matches_block_core_output_order() {
        let n = 64;
        let core = FixedFft::new(n).unwrap();
        let frame: Vec<CQ15> = (0..n)
            .map(|i| CQ15::from_f64(0.3 * ((i as f64) * 0.2).sin(), 0.1))
            .collect();
        let expected = core.fft(&frame).unwrap();

        let mut fft = StreamingFft::forward(n).unwrap();
        let mut outputs = Vec::new();
        for cycle in 0..(n + fft.latency_cycles() as usize + n) {
            let input = frame.get(cycle).copied();
            if let Some(out) = fft.clock(input) {
                outputs.push(out);
            }
        }
        assert_eq!(outputs, expected);
    }
}
