//! Bit-accurate fixed-point radix-2 FFT/IFFT core.

use std::error::Error;
use std::fmt;

use mimo_fixed::{CQ15, Cf64, SAMPLE_BITS};

/// Errors produced by the fixed-point FFT core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FftError {
    /// Requested transform size is unsupported.
    UnsupportedSize(usize),
    /// Input block length does not match the configured size.
    LengthMismatch {
        /// Configured transform size.
        expected: usize,
        /// Length actually supplied.
        got: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::UnsupportedSize(n) => {
                write!(f, "unsupported FFT size {n} (power of two in 8..=4096 required)")
            }
            FftError::LengthMismatch { expected, got } => {
                write!(f, "input length {got} does not match FFT size {expected}")
            }
        }
    }
}

impl Error for FftError {}

/// Output scaling policy, modelling the right-shift normalization a
/// hardware core applies to keep results on the 16-bit bus.
///
/// The defaults reflect where each transform sits in the paper's
/// datapath: the transmit IFFT backs its output off so OFDM peaks
/// (PAPR) rarely clip the DAC bus, while the receive FFT divides by
/// `√N`-ish so a full-scale input neither clips nor starves precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftScaling {
    /// Right-shift applied to forward-transform outputs.
    pub forward_shift: u32,
    /// Right-shift applied to inverse-transform outputs.
    pub inverse_shift: u32,
}

impl FftScaling {
    /// Default policy for a transform of size `n`:
    /// forward shift `(log2 n + 2) / 2`, inverse shift `log2 n − 1`.
    pub fn for_size(n: usize) -> Self {
        let log2 = n.trailing_zeros();
        Self {
            forward_shift: (log2 + 2) / 2,
            inverse_shift: log2.saturating_sub(1),
        }
    }

    /// No scaling at all (wide outputs; only for analysis/tests).
    pub fn none() -> Self {
        Self {
            forward_shift: 0,
            inverse_shift: 0,
        }
    }
}

/// A fixed-point radix-2 decimation-in-time FFT/IFFT core.
///
/// Twiddle factors are quantized to Q1.15 exactly as a hardware twiddle
/// ROM would store them; butterflies run on the wide `i64` backing
/// (guard bits) and results are saturated onto the 16-bit bus at the
/// output register, so the model clips exactly where hardware would.
///
/// # Examples
///
/// ```
/// use mimo_fft::FixedFft;
/// use mimo_fixed::CQ15;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let fft = FixedFft::new(64)?;
/// let mut impulse = vec![CQ15::ZERO; 64];
/// impulse[0] = CQ15::from_f64(0.5, 0.0);
/// let spectrum = fft.fft(&impulse)?;
/// // Flat spectrum at 0.5 >> forward_shift.
/// let expected = 0.5 / (1 << fft.scaling().forward_shift) as f64;
/// assert!((spectrum[7].re.to_f64() - expected).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FixedFft {
    size: usize,
    scaling: FftScaling,
    /// Twiddles e^{-j2πk/N} for k in 0..N/2, quantized to Q1.15.
    twiddles: Vec<CQ15>,
}

impl FixedFft {
    /// Creates a core of the given size with default scaling.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::UnsupportedSize`] unless `n` is a power of
    /// two in `8..=4096`.
    pub fn new(n: usize) -> Result<Self, FftError> {
        Self::with_scaling(n, FftScaling::for_size(n))
    }

    /// Creates a core with an explicit scaling policy.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::UnsupportedSize`] unless `n` is a power of
    /// two in `8..=4096`.
    pub fn with_scaling(n: usize, scaling: FftScaling) -> Result<Self, FftError> {
        if !crate::is_supported_size(n) {
            return Err(FftError::UnsupportedSize(n));
        }
        let twiddles = (0..n / 2)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Cf64::from_polar(1.0, ang).to_fixed::<15>().saturate_bits(SAMPLE_BITS)
            })
            .collect();
        Ok(Self { size: n, scaling, twiddles })
    }

    /// Transform size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The configured scaling policy.
    pub fn scaling(&self) -> FftScaling {
        self.scaling
    }

    /// Forward transform: `out[k] = (Σ x[n]·e^{-j2πkn/N}) >> forward_shift`,
    /// saturated to the 16-bit bus.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != size`.
    pub fn fft(&self, input: &[CQ15]) -> Result<Vec<CQ15>, FftError> {
        let mut out = vec![CQ15::ZERO; self.size];
        self.fft_into(input, &mut out)?;
        Ok(out)
    }

    /// Inverse transform:
    /// `out[n] = (Σ X[k]·e^{+j2πkn/N}) >> inverse_shift`, saturated to
    /// the 16-bit bus. With the default `inverse_shift = log2 N − 1`
    /// this is `2/N` times the unnormalized IDFT.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `input.len() != size`.
    pub fn ifft(&self, input: &[CQ15]) -> Result<Vec<CQ15>, FftError> {
        let mut out = vec![CQ15::ZERO; self.size];
        self.ifft_into(input, &mut out)?;
        Ok(out)
    }

    /// Allocation-free forward transform into a caller-provided buffer
    /// (`input` and `out` must both be exactly `size` samples). Equal
    /// to [`FixedFft::fft`] bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on either length.
    pub fn fft_into(&self, input: &[CQ15], out: &mut [CQ15]) -> Result<(), FftError> {
        self.transform_into(input, out, false)
    }

    /// Allocation-free inverse transform into a caller-provided buffer.
    /// Equal to [`FixedFft::ifft`] bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] on either length.
    pub fn ifft_into(&self, input: &[CQ15], out: &mut [CQ15]) -> Result<(), FftError> {
        self.transform_into(input, out, true)
    }

    fn transform_into(
        &self,
        input: &[CQ15],
        out: &mut [CQ15],
        inverse: bool,
    ) -> Result<(), FftError> {
        if input.len() != self.size {
            return Err(FftError::LengthMismatch {
                expected: self.size,
                got: input.len(),
            });
        }
        if out.len() != self.size {
            return Err(FftError::LengthMismatch {
                expected: self.size,
                got: out.len(),
            });
        }
        let n = self.size;
        // Work in the wide backing (CQ15 carries i64 raws); saturate
        // only at the output register.
        let data = out;
        data.copy_from_slice(input);
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 0..n {
            if i < j {
                data.swap(i, j);
            }
            let mut m = n >> 1;
            while m >= 1 && j & m != 0 {
                j ^= m;
                m >>= 1;
            }
            j |= m;
        }
        let mut len = 2;
        while len <= n {
            let step = n / len;
            for chunk in data.chunks_mut(len) {
                let half = len / 2;
                for i in 0..half {
                    let tw = self.twiddles[i * step];
                    let tw = if inverse { tw.conj() } else { tw };
                    let u = chunk[i];
                    let v = chunk[i + half] * tw;
                    chunk[i] = u + v;
                    chunk[i + half] = u - v;
                }
            }
            len <<= 1;
        }
        let shift = if inverse {
            self.scaling.inverse_shift
        } else {
            self.scaling.forward_shift
        };
        for c in data.iter_mut() {
            *c = c.shr_round(shift).saturate_bits(SAMPLE_BITS);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{fft_f64, ifft_f64};

    fn to_f64(v: &[CQ15]) -> Vec<Cf64> {
        v.iter().map(|&c| Cf64::from_fixed(c)).collect()
    }

    fn from_f64(v: &[Cf64]) -> Vec<CQ15> {
        v.iter().map(|c| c.to_fixed::<15>()).collect()
    }

    /// Output SNR of the fixed-point core vs the f64 reference, in dB.
    fn fixed_vs_float_snr_db(n: usize) -> f64 {
        let fft = FixedFft::new(n).unwrap();
        // Random-ish but deterministic multitone input at rms ~0.15.
        let input: Vec<Cf64> = (0..n)
            .map(|i| {
                let t = i as f64;
                Cf64::new(
                    0.1 * (0.7 * t).sin() + 0.05 * (2.1 * t + 0.3).cos(),
                    0.1 * (1.3 * t).cos() - 0.05 * (0.4 * t).sin(),
                )
            })
            .collect();
        let got = to_f64(&fft.fft(&from_f64(&input)).unwrap());
        let mut reference = input;
        fft_f64(&mut reference);
        let scale = 1.0 / (1 << fft.scaling().forward_shift) as f64;
        let mut sig = 0.0;
        let mut err = 0.0;
        for (g, r) in got.iter().zip(&reference) {
            let want = r.scale(scale);
            sig += want.norm_sqr();
            err += (*g - want).norm_sqr();
        }
        10.0 * (sig / err).log10()
    }

    #[test]
    fn impulse_gives_flat_spectrum() {
        let fft = FixedFft::new(64).unwrap();
        let mut x = vec![CQ15::ZERO; 64];
        x[0] = CQ15::from_f64(0.5, 0.0);
        let y = fft.fft(&x).unwrap();
        let expected = 0.5 / (1 << fft.scaling().forward_shift) as f64;
        for bin in &y {
            assert!((bin.re.to_f64() - expected).abs() < 1e-3);
            assert!(bin.im.to_f64().abs() < 1e-3);
        }
    }

    #[test]
    fn fixed_matches_float_to_high_snr() {
        for n in [64usize, 128, 256, 512] {
            let snr = fixed_vs_float_snr_db(n);
            assert!(snr > 55.0, "N={n}: fixed-point FFT SNR {snr:.1} dB too low");
        }
    }

    #[test]
    fn ifft_matches_float_reference() {
        let n = 64;
        let fft = FixedFft::new(n).unwrap();
        let freq: Vec<Cf64> = (0..n)
            .map(|k| Cf64::new(0.3 * ((k * 7) as f64).sin(), 0.3 * ((k * 3) as f64).cos()))
            .collect();
        let got = to_f64(&fft.ifft(&from_f64(&freq)).unwrap());
        let mut reference = freq;
        ifft_f64(&mut reference);
        // Our ifft = (2/N)·unnormalized IDFT = 2·normalized IDFT... the
        // reference applies 1/N, ours applies 2^-(log2N-1) = 2/N.
        for (g, r) in got.iter().zip(&reference) {
            let want = r.scale(2.0);
            assert!((*g - want).norm() < 2e-3, "got {g}, want {want}");
        }
    }

    #[test]
    fn fft_of_ifft_recovers_input_shape() {
        let n = 64;
        let core = FixedFft::new(n).unwrap();
        let freq: Vec<CQ15> = (0..n)
            .map(|k| CQ15::from_f64(if k % 5 == 0 { 0.4 } else { -0.2 }, 0.1))
            .collect();
        let time = core.ifft(&freq).unwrap();
        let back = core.fft(&time).unwrap();
        // Net gain: ifft 2/N · fft N/2^fwd = 2/2^fwd = 2/16 = 1/8 for N=64.
        let gain = 2.0 / (1 << core.scaling().forward_shift) as f64;
        for (b, f) in back.iter().zip(&freq) {
            let want = Cf64::from_fixed(*f).scale(gain);
            assert!((Cf64::from_fixed(*b) - want).norm() < 3e-3);
        }
    }

    #[test]
    fn wrong_length_rejected() {
        let fft = FixedFft::new(64).unwrap();
        let err = fft.fft(&vec![CQ15::ZERO; 32]).unwrap_err();
        assert_eq!(err, FftError::LengthMismatch { expected: 64, got: 32 });
        assert!(err.to_string().contains("32"));
    }

    #[test]
    fn unsupported_sizes_rejected() {
        assert_eq!(FixedFft::new(48).unwrap_err(), FftError::UnsupportedSize(48));
        assert_eq!(FixedFft::new(4).unwrap_err(), FftError::UnsupportedSize(4));
    }

    #[test]
    fn full_scale_input_saturates_not_wraps() {
        let fft = FixedFft::with_scaling(64, FftScaling::none()).unwrap();
        let x = vec![CQ15::from_f64(0.999, 0.0); 64];
        let y = fft.fft(&x).unwrap();
        // Unscaled DC bin would be ~64; it must clamp to the bus max,
        // not wrap negative.
        assert!(y[0].re.to_f64() > 0.9);
        assert_eq!(y[0].re.raw(), (1 << 15) - 1);
    }

    #[test]
    fn default_scaling_values() {
        assert_eq!(FftScaling::for_size(64), FftScaling { forward_shift: 4, inverse_shift: 5 });
        assert_eq!(FftScaling::for_size(512), FftScaling { forward_shift: 5, inverse_shift: 8 });
    }
}
