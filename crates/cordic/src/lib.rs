//! CORDIC rotation and vectoring engines.
//!
//! The paper leans on CORDICs in two places:
//!
//! * the **time synchroniser** uses a CORDIC to compute the magnitude of
//!   the 32-tap correlation sum ("much more resource efficient than
//!   square-root calculation logic", §IV.B);
//! * the **QR decomposition** systolic array is built entirely from
//!   CORDIC cells — boundary cells run two *vectoring* CORDICs, internal
//!   cells run three *rotation* CORDICs (Figs 6–7), each with a
//!   **20-clock-cycle latency**.
//!
//! This crate provides the iterative fixed-point engine ([`Cordic`]),
//! and cycle-accurate pipelined wrappers ([`PipelinedVectoring`],
//! [`PipelinedRotator`]) whose latency matches the paper's 20 cycles
//! (18 micro-rotations + input register + gain-compensation stage).
//!
//! # Examples
//!
//! ```
//! use mimo_cordic::Cordic;
//! use mimo_fixed::Q16;
//!
//! let cordic = Cordic::new();
//! let v = cordic.vector(Q16::from_f64(0.6), Q16::from_f64(0.8));
//! assert!((v.magnitude.to_f64() - 1.0).abs() < 1e-3);
//! assert!((v.angle.to_f64() - 0.8f64.atan2(0.6)).abs() < 1e-3);
//! ```

mod engine;
mod pipeline;

pub use engine::{Cordic, Rotated, Vectored};
pub use pipeline::{PipelinedRotator, PipelinedVectoring};

/// Pipeline latency, in clock cycles, of each CORDIC element in the
/// paper ("Each CORDIC element has a latency of 20 clock cycles").
pub const CORDIC_LATENCY_CYCLES: u32 = 20;

/// Number of micro-rotation iterations: 20-cycle latency minus the
/// input register and the gain-compensation multiply stage.
pub const CORDIC_ITERATIONS: u32 = 18;
