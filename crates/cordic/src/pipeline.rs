//! Cycle-accurate pipelined CORDIC models.
//!
//! The paper keeps clock speed high by pipelining each CORDIC to a
//! 20-cycle latency. These wrappers reproduce that behaviour: one input
//! is accepted per clock, and the matching output emerges exactly
//! [`latency`](PipelinedVectoring::latency_cycles) clocks later. They
//! are used by the QRD systolic-array cycle model to measure the
//! 440-cycle datapath latency the paper reports.

use std::collections::VecDeque;

use mimo_fixed::Q16;

use crate::engine::{Cordic, Rotated, Vectored};

/// A fixed-depth delay line holding in-flight pipeline results.
#[derive(Debug, Clone)]
struct DelayLine<T> {
    depth: usize,
    slots: VecDeque<Option<T>>,
}

impl<T> DelayLine<T> {
    fn new(depth: usize) -> Self {
        let mut slots = VecDeque::with_capacity(depth);
        for _ in 0..depth {
            slots.push_back(None);
        }
        Self { depth, slots }
    }

    /// Advances one clock: pushes `input` in, pops the oldest slot out.
    fn clock(&mut self, input: Option<T>) -> Option<T> {
        self.slots.push_back(input);
        debug_assert_eq!(self.slots.len(), self.depth + 1);
        self.slots.pop_front().flatten()
    }
}

/// A vectoring-mode CORDIC with the paper's pipeline behaviour: call
/// [`clock`](Self::clock) once per clock cycle; results appear
/// [`CORDIC_LATENCY_CYCLES`](crate::CORDIC_LATENCY_CYCLES) cycles after
/// their inputs.
///
/// # Examples
///
/// ```
/// use mimo_cordic::PipelinedVectoring;
/// use mimo_fixed::Q16;
///
/// let mut pv = PipelinedVectoring::new();
/// let mut out = None;
/// for cycle in 0..pv.latency_cycles() {
///     let input = if cycle == 0 {
///         Some((Q16::from_f64(0.6), Q16::from_f64(0.8)))
///     } else {
///         None
///     };
///     out = pv.clock(input);
///     if cycle + 1 < pv.latency_cycles() {
///         assert!(out.is_none());
///     }
/// }
/// assert!((out.unwrap().magnitude.to_f64() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedVectoring {
    cordic: Cordic,
    line: DelayLine<Vectored>,
}

impl Default for PipelinedVectoring {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelinedVectoring {
    /// Creates a pipeline with the default 20-cycle latency.
    pub fn new() -> Self {
        Self::with_cordic(Cordic::new())
    }

    /// Creates a pipeline around a custom engine (latency follows the
    /// engine's iteration count).
    pub fn with_cordic(cordic: Cordic) -> Self {
        let depth = cordic.latency_cycles() as usize - 1;
        Self {
            cordic,
            line: DelayLine::new(depth),
        }
    }

    /// Pipeline latency in clock cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.line.depth as u32 + 1
    }

    /// Advances one clock cycle. `input` is `(x, y)`; the return value
    /// is the result of the input fed `latency_cycles()` clocks ago, if
    /// any.
    pub fn clock(&mut self, input: Option<(Q16, Q16)>) -> Option<Vectored> {
        let computed = input.map(|(x, y)| self.cordic.vector(x, y));
        self.line.clock(computed)
    }
}

/// A rotation-mode CORDIC with the paper's 20-cycle pipeline behaviour.
/// See [`PipelinedVectoring`] for the clocking contract.
#[derive(Debug, Clone)]
pub struct PipelinedRotator {
    cordic: Cordic,
    line: DelayLine<Rotated>,
}

impl Default for PipelinedRotator {
    fn default() -> Self {
        Self::new()
    }
}

impl PipelinedRotator {
    /// Creates a pipeline with the default 20-cycle latency.
    pub fn new() -> Self {
        Self::with_cordic(Cordic::new())
    }

    /// Creates a pipeline around a custom engine.
    pub fn with_cordic(cordic: Cordic) -> Self {
        let depth = cordic.latency_cycles() as usize - 1;
        Self {
            cordic,
            line: DelayLine::new(depth),
        }
    }

    /// Pipeline latency in clock cycles.
    pub fn latency_cycles(&self) -> u32 {
        self.line.depth as u32 + 1
    }

    /// Advances one clock cycle with optional `(x, y, angle)` input.
    pub fn clock(&mut self, input: Option<(Q16, Q16, Q16)>) -> Option<Rotated> {
        let computed = input.map(|(x, y, a)| self.cordic.rotate(x, y, a));
        self.line.clock(computed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: f64) -> Q16 {
        Q16::from_f64(v)
    }

    #[test]
    fn vectoring_latency_is_exact() {
        let mut pv = PipelinedVectoring::new();
        assert_eq!(pv.latency_cycles(), 20);
        let mut first_out_at = None;
        for cycle in 0..40 {
            let input = if cycle == 0 { Some((q(0.6), q(0.8))) } else { None };
            if let Some(out) = pv.clock(input) {
                first_out_at = Some(cycle);
                assert!((out.magnitude.to_f64() - 1.0).abs() < 1e-3);
                break;
            }
        }
        // Input at cycle 0 emerges at the end of cycle 19 (20 cycles).
        assert_eq!(first_out_at, Some(19));
    }

    #[test]
    fn pipeline_sustains_one_input_per_cycle() {
        let mut pv = PipelinedVectoring::new();
        let n = 100;
        let mut outputs = Vec::new();
        for cycle in 0..(n + 20) {
            let input = if cycle < n {
                let x = 0.001 * (cycle as f64 + 1.0);
                Some((q(x), q(0.0)))
            } else {
                None
            };
            if let Some(out) = pv.clock(input) {
                outputs.push(out.magnitude.to_f64());
            }
        }
        assert_eq!(outputs.len(), n, "full throughput: one result per input");
        // Results arrive in order.
        for (i, m) in outputs.iter().enumerate() {
            assert!((m - 0.001 * (i as f64 + 1.0)).abs() < 1e-3);
        }
    }

    #[test]
    fn rotator_latency_and_value() {
        let mut pr = PipelinedRotator::new();
        let mut got = None;
        for cycle in 0..20 {
            let input = if cycle == 0 {
                Some((q(1.0), q(0.0), q(std::f64::consts::FRAC_PI_2)))
            } else {
                None
            };
            got = pr.clock(input);
        }
        let r = got.expect("output after exactly 20 clocks");
        assert!(r.x.to_f64().abs() < 1e-3);
        assert!((r.y.to_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn bubbles_propagate_as_bubbles() {
        let mut pv = PipelinedVectoring::new();
        // Feed input on even cycles only; outputs must mirror that.
        let mut results = 0;
        for cycle in 0..60 {
            let input = if cycle % 2 == 0 && cycle < 20 {
                Some((q(0.5), q(0.0)))
            } else {
                None
            };
            if pv.clock(input).is_some() {
                assert_eq!((cycle - 19) % 2, 0, "output cadence mirrors input");
                results += 1;
            }
        }
        assert_eq!(results, 10);
    }
}
