//! The iterative fixed-point CORDIC kernel.

use mimo_fixed::Q16;
#[cfg(test)]
use mimo_fixed::Fx;

use crate::CORDIC_ITERATIONS;

/// Result of a vectoring-mode CORDIC operation: the input vector rotated
/// onto the positive x-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Vectored {
    /// Vector magnitude (gain-compensated).
    pub magnitude: Q16,
    /// Angle of the original vector, in radians, range (-π, π].
    pub angle: Q16,
}

/// Result of a rotation-mode CORDIC operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rotated {
    /// Rotated x component (gain-compensated).
    pub x: Q16,
    /// Rotated y component (gain-compensated).
    pub y: Q16,
}

/// An iterative circular CORDIC engine in Q2.16 fixed point, the
/// arithmetic core of both the time synchroniser's magnitude calculator
/// and every cell in the QRD systolic array.
///
/// The engine works internally on the wide `i64` backing of [`Q16`]
/// (hardware keeps guard bits through the micro-rotations) and
/// compensates the CORDIC gain `K ≈ 1.6468` with a final constant
/// multiply, as the RTL does with one DSP block.
///
/// # Examples
///
/// ```
/// use mimo_cordic::Cordic;
/// use mimo_fixed::Q16;
///
/// let cordic = Cordic::new();
/// let r = cordic.rotate(Q16::ONE, Q16::ZERO, Q16::from_f64(std::f64::consts::FRAC_PI_2));
/// assert!(r.x.to_f64().abs() < 1e-3);
/// assert!((r.y.to_f64() - 1.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Cordic {
    /// atan(2^-i) table in Q16 radians, one entry per iteration.
    atan_table: Vec<i64>,
    /// 1/K gain compensation in Q16.
    inv_gain: Q16,
    iterations: u32,
}

impl Default for Cordic {
    fn default() -> Self {
        Self::new()
    }
}

impl Cordic {
    /// Creates an engine with the paper's iteration count
    /// ([`CORDIC_ITERATIONS`] = 18, giving a 20-cycle pipeline).
    pub fn new() -> Self {
        Self::with_iterations(CORDIC_ITERATIONS)
    }

    /// Creates an engine with a custom micro-rotation count.
    ///
    /// Fewer iterations model a cheaper, lower-accuracy CORDIC; this is
    /// the knob used by the accuracy-ablation benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is zero or greater than 40.
    pub fn with_iterations(iterations: u32) -> Self {
        assert!(
            (1..=40).contains(&iterations),
            "iteration count out of range: {iterations}"
        );
        let atan_table = (0..iterations)
            .map(|i| Q16::from_f64((2f64.powi(-(i as i32))).atan()).raw())
            .collect();
        let gain: f64 = (0..iterations)
            .map(|i| (1.0 + 2f64.powi(-2 * i as i32)).sqrt())
            .product();
        Self {
            atan_table,
            inv_gain: Q16::from_f64(1.0 / gain),
            iterations,
        }
    }

    /// Number of micro-rotation iterations.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Pipeline latency of the equivalent hardware element, in cycles:
    /// one input register + `iterations` + one gain-compensation stage.
    pub fn latency_cycles(&self) -> u32 {
        self.iterations + 2
    }

    /// Vectoring mode: rotates `(x, y)` onto the positive x-axis,
    /// returning the magnitude and the angle rotated through.
    ///
    /// Handles all four quadrants via a pre-rotation by π when `x < 0`,
    /// like the quadrant-correction logic in front of a hardware CORDIC.
    pub fn vector(&self, x: Q16, y: Q16) -> Vectored {
        let (mut xr, mut yr) = (x.raw(), y.raw());
        // Quadrant pre-rotation: CORDIC converges only for |angle| < ~1.74 rad.
        let mut acc: i64 = 0;
        if xr < 0 {
            let pi = Q16::from_f64(std::f64::consts::PI).raw();
            if yr >= 0 {
                // Rotate by -π: angle accumulates +π.
                acc = pi;
            } else {
                acc = -pi;
            }
            xr = -xr;
            yr = -yr;
        }
        // Micro-rotations drive y to zero.
        let mut z = acc;
        for i in 0..self.iterations {
            let (dx, dy) = (xr >> i, yr >> i);
            if yr >= 0 {
                xr += dy;
                yr -= dx;
                z += self.atan_table[i as usize];
            } else {
                xr -= dy;
                yr += dx;
                z -= self.atan_table[i as usize];
            }
        }
        let magnitude = Q16::from_raw(xr).mul(self.inv_gain);
        Vectored {
            magnitude,
            angle: Q16::from_raw(z),
        }
    }

    /// Rotation mode: rotates `(x, y)` by `angle` radians
    /// (counter-clockwise positive).
    ///
    /// Angles of any magnitude are accepted; they are wrapped into
    /// (-π, π] and quadrant-corrected before the micro-rotations.
    pub fn rotate(&self, x: Q16, y: Q16, angle: Q16) -> Rotated {
        let pi = Q16::from_f64(std::f64::consts::PI).raw();
        let two_pi = 2 * pi;
        let half_pi = pi / 2;

        // Wrap into (-π, π].
        let mut z = angle.raw() % two_pi;
        if z > pi {
            z -= two_pi;
        } else if z < -pi {
            z += two_pi;
        }

        let (mut xr, mut yr) = (x.raw(), y.raw());
        // Pre-rotate by ±π/2 to bring the residual inside convergence.
        if z > half_pi {
            let t = xr;
            xr = -yr;
            yr = t;
            z -= half_pi;
        } else if z < -half_pi {
            let t = xr;
            xr = yr;
            yr = -t;
            z += half_pi;
        }

        for i in 0..self.iterations {
            let (dx, dy) = (xr >> i, yr >> i);
            if z >= 0 {
                xr -= dy;
                yr += dx;
                z -= self.atan_table[i as usize];
            } else {
                xr += dy;
                yr -= dx;
                z += self.atan_table[i as usize];
            }
        }
        Rotated {
            x: Q16::from_raw(xr).mul(self.inv_gain),
            y: Q16::from_raw(yr).mul(self.inv_gain),
        }
    }

    /// Magnitude of a complex value — the time synchroniser's use of the
    /// CORDIC ("Magnitude Calc" in Fig 4). Equivalent to
    /// [`Cordic::vector`] with the angle output left unconnected.
    pub fn magnitude(&self, re: Q16, im: Q16) -> Q16 {
        self.vector(re, im).magnitude
    }
}

/// Convenience: worst-case absolute error of an `iterations`-deep CORDIC
/// in radians (angle) — roughly `2^-(iterations-1)` plus quantization.
#[cfg(test)]
pub(crate) fn angle_tolerance(iterations: u32) -> f64 {
    2f64.powi(-(iterations as i32 - 1)) + 4.0 / (1u64 << Fx::<16>::frac_bits()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

    fn q(v: f64) -> Q16 {
        Q16::from_f64(v)
    }

    #[test]
    fn vector_first_quadrant() {
        let c = Cordic::new();
        let v = c.vector(q(0.6), q(0.8));
        assert!((v.magnitude.to_f64() - 1.0).abs() < 1e-3);
        assert!((v.angle.to_f64() - 0.8f64.atan2(0.6)).abs() < 1e-3);
    }

    #[test]
    fn vector_all_quadrants_match_atan2() {
        let c = Cordic::new();
        let cases = [
            (0.5, 0.5),
            (-0.5, 0.5),
            (-0.5, -0.5),
            (0.5, -0.5),
            (0.9, 0.1),
            (-0.9, 0.1),
            (-0.1, -0.9),
        ];
        for (x, y) in cases {
            let v = c.vector(q(x), q(y));
            let expected = f64::atan2(y, x);
            assert!(
                (v.angle.to_f64() - expected).abs() < 2e-3,
                "atan2({y},{x}): got {} want {expected}",
                v.angle.to_f64()
            );
            assert!((v.magnitude.to_f64() - x.hypot(y)).abs() < 2e-3);
        }
    }

    #[test]
    fn vector_zero_is_zero() {
        let c = Cordic::new();
        let v = c.vector(Q16::ZERO, Q16::ZERO);
        assert_eq!(v.magnitude.to_f64(), 0.0);
    }

    #[test]
    fn vector_on_negative_x_axis() {
        let c = Cordic::new();
        let v = c.vector(q(-1.0), Q16::ZERO);
        assert!((v.magnitude.to_f64() - 1.0).abs() < 1e-3);
        assert!((v.angle.to_f64().abs() - PI).abs() < 2e-3);
    }

    #[test]
    fn rotate_quarter_turn() {
        let c = Cordic::new();
        let r = c.rotate(Q16::ONE, Q16::ZERO, q(FRAC_PI_2));
        assert!(r.x.to_f64().abs() < 1e-3);
        assert!((r.y.to_f64() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn rotate_matches_rotation_matrix() {
        let c = Cordic::new();
        for angle in [-3.0, -1.8, -FRAC_PI_4, 0.0, 0.3, 1.0, 2.5, 3.1] {
            let (x0, y0) = (0.37, -0.22);
            let r = c.rotate(q(x0), q(y0), q(angle));
            let ex = x0 * angle.cos() - y0 * angle.sin();
            let ey = x0 * angle.sin() + y0 * angle.cos();
            assert!(
                (r.x.to_f64() - ex).abs() < 2e-3 && (r.y.to_f64() - ey).abs() < 2e-3,
                "angle {angle}: got ({}, {}), want ({ex}, {ey})",
                r.x.to_f64(),
                r.y.to_f64()
            );
        }
    }

    #[test]
    fn rotate_wraps_large_angles() {
        let c = Cordic::new();
        let a = c.rotate(q(0.5), q(0.25), q(0.4));
        let b = c.rotate(q(0.5), q(0.25), q(0.4 + 2.0 * PI));
        assert!((a.x.to_f64() - b.x.to_f64()).abs() < 2e-3);
        assert!((a.y.to_f64() - b.y.to_f64()).abs() < 2e-3);
    }

    #[test]
    fn rotate_then_unrotate_is_identity() {
        let c = Cordic::new();
        let (x0, y0) = (0.43, 0.31);
        let r = c.rotate(q(x0), q(y0), q(1.1));
        let back = c.rotate(r.x, r.y, q(-1.1));
        assert!((back.x.to_f64() - x0).abs() < 3e-3);
        assert!((back.y.to_f64() - y0).abs() < 3e-3);
    }

    #[test]
    fn vector_then_rotate_recovers_input() {
        let c = Cordic::new();
        let (x0, y0) = (-0.37, 0.61);
        let v = c.vector(q(x0), q(y0));
        let r = c.rotate(v.magnitude, Q16::ZERO, v.angle);
        assert!((r.x.to_f64() - x0).abs() < 3e-3);
        assert!((r.y.to_f64() - y0).abs() < 3e-3);
    }

    #[test]
    fn latency_is_twenty_cycles_at_default_config() {
        let c = Cordic::new();
        assert_eq!(c.latency_cycles(), crate::CORDIC_LATENCY_CYCLES);
    }

    #[test]
    fn fewer_iterations_lower_accuracy() {
        let coarse = Cordic::with_iterations(6);
        let fine = Cordic::new();
        let expected = 0.8f64.atan2(0.6);
        let ec = (coarse.vector(q(0.6), q(0.8)).angle.to_f64() - expected).abs();
        let ef = (fine.vector(q(0.6), q(0.8)).angle.to_f64() - expected).abs();
        assert!(ef <= ec, "more iterations must not be less accurate");
        assert!(ec < angle_tolerance(6));
    }

    #[test]
    #[should_panic(expected = "iteration count out of range")]
    fn zero_iterations_rejected() {
        let _ = Cordic::with_iterations(0);
    }

    #[test]
    fn magnitude_shortcut_matches_vector() {
        let c = Cordic::new();
        assert_eq!(
            c.magnitude(q(0.3), q(-0.4)),
            c.vector(q(0.3), q(-0.4)).magnitude
        );
    }
}
