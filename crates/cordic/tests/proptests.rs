//! Property-based tests for the CORDIC engines.

use mimo_cordic::{Cordic, PipelinedRotator, PipelinedVectoring};
use mimo_fixed::Q16;
use proptest::prelude::*;

fn q(v: f64) -> Q16 {
    Q16::from_f64(v)
}

proptest! {
    /// Vectoring angle matches atan2 for any nonzero vector.
    #[test]
    fn vector_angle_matches_atan2(x in -0.9f64..0.9, y in -0.9f64..0.9) {
        prop_assume!(x.hypot(y) > 0.05);
        let c = Cordic::new();
        let v = c.vector(q(x), q(y));
        let expected = y.atan2(x);
        let mut err = (v.angle.to_f64() - expected).abs();
        // ±π are the same angle.
        err = err.min((err - 2.0 * std::f64::consts::PI).abs());
        prop_assert!(err < 3e-3, "got {} want {expected}", v.angle.to_f64());
    }

    /// Vectoring magnitude matches hypot and is never negative.
    #[test]
    fn vector_magnitude_matches_hypot(x in -0.9f64..0.9, y in -0.9f64..0.9) {
        let c = Cordic::new();
        let v = c.vector(q(x), q(y));
        prop_assert!(v.magnitude.to_f64() >= -1e-6);
        prop_assert!((v.magnitude.to_f64() - x.hypot(y)).abs() < 3e-3);
    }

    /// Rotation preserves vector norm (CORDIC gain is compensated).
    #[test]
    fn rotation_preserves_norm(
        x in -0.7f64..0.7, y in -0.7f64..0.7, angle in -3.1f64..3.1
    ) {
        let c = Cordic::new();
        let r = c.rotate(q(x), q(y), q(angle));
        let before = x.hypot(y);
        let after = r.x.to_f64().hypot(r.y.to_f64());
        prop_assert!((after - before).abs() < 4e-3);
    }

    /// Rotation matches the rotation-matrix reference.
    #[test]
    fn rotation_matches_matrix(
        x in -0.7f64..0.7, y in -0.7f64..0.7, angle in -3.1f64..3.1
    ) {
        let c = Cordic::new();
        let r = c.rotate(q(x), q(y), q(angle));
        let ex = x * angle.cos() - y * angle.sin();
        let ey = x * angle.sin() + y * angle.cos();
        prop_assert!((r.x.to_f64() - ex).abs() < 3e-3);
        prop_assert!((r.y.to_f64() - ey).abs() < 3e-3);
    }

    /// Pipelined engines agree exactly with the combinational engine.
    #[test]
    fn pipelined_matches_combinational(
        x in -0.7f64..0.7, y in -0.7f64..0.7, angle in -3.0f64..3.0
    ) {
        let c = Cordic::new();
        let mut pv = PipelinedVectoring::new();
        let mut pr = PipelinedRotator::new();
        let mut vec_out = None;
        let mut rot_out = None;
        for cycle in 0..20 {
            let vin = (cycle == 0).then_some((q(x), q(y)));
            let rin = (cycle == 0).then_some((q(x), q(y), q(angle)));
            vec_out = pv.clock(vin);
            rot_out = pr.clock(rin);
        }
        prop_assert_eq!(vec_out.unwrap(), c.vector(q(x), q(y)));
        prop_assert_eq!(rot_out.unwrap(), c.rotate(q(x), q(y), q(angle)));
    }

    /// Angle accuracy improves monotonically (weakly) with iterations.
    #[test]
    fn accuracy_improves_with_iterations(x in 0.1f64..0.9, y in -0.9f64..0.9) {
        let expected = y.atan2(x);
        let coarse = Cordic::with_iterations(8);
        let fine = Cordic::with_iterations(18);
        let ec = (coarse.vector(q(x), q(y)).angle.to_f64() - expected).abs();
        let ef = (fine.vector(q(x), q(y)).angle.to_f64() - expected).abs();
        // Allow a tiny slack: fixed-point quantization is not monotone.
        prop_assert!(ef <= ec + 1e-3);
    }
}
