//! # mimo-baseband
//!
//! A 1 Gbps 4×4 MIMO-OFDM wireless baseband transceiver in Rust — a
//! functional and cycle-level reproduction of *"An FPGA 1Gbps Wireless
//! Baseband MIMO Transceiver"* (Toal et al., SOCC 2012).
//!
//! This facade crate re-exports every subsystem crate in the workspace
//! under one roof. See `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use mimo_baseband::phy::{PhyConfig, MimoTransmitter, MimoReceiver};
//! use mimo_baseband::channel::{ChannelModel, IdealChannel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = PhyConfig::paper_synthesis(); // 4x4, 16-QAM, 64-pt, r=1/2
//! let tx = MimoTransmitter::new(cfg.clone())?;
//! let mut rx = MimoReceiver::new(cfg)?;
//!
//! let payload: Vec<u8> = (0..64).map(|i| i as u8).collect();
//! let burst = tx.transmit_burst(&payload)?;
//! let mut chan = IdealChannel::new(4);
//! let received = chan.propagate(&burst.streams);
//! let decoded = rx.receive_burst(&received)?;
//! assert_eq!(decoded.payload, payload);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart: a supervised streaming link
//!
//! For samples that cross a real wire, wrap the streaming endpoints
//! in the transport layer's supervised links: CRC-framed chunks,
//! credit-based flow control, HELLO/RESET session handshake,
//! heartbeats and a reconnecting watchdog.
//!
//! ```
//! use std::time::Duration;
//! use mimo_baseband::phy::{
//!     LinkGeometry, Mcs, PhyConfig, StreamingReceiver, StreamingTransmitter,
//! };
//! use mimo_baseband::transport::{
//!     LinkEvent, MemoryDuplex, SampleReceiver, SampleSender,
//!     SupervisedReceiver, SupervisedSender, SupervisorConfig, TransportError,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (near, far) = MemoryDuplex::pair(1 << 20);
//! let link_tx = SampleSender::new(
//!     StreamingTransmitter::new(PhyConfig::paper_synthesis())?
//!         .with_queue_capacity(4),          // bounded: QueueFull, not OOM
//!     near,
//!     160,                                  // samples per wire frame
//! )?
//! .with_flow_control(1024)?;                // stop when credit runs out
//! let link_rx = SampleReceiver::new(
//!     StreamingReceiver::from_geometry(LinkGeometry::mimo())?,
//!     far,
//! )
//! .with_flow_control(1024, 256);            // grant credit as we consume
//!
//! // The in-memory wire cannot be re-dialled; over TCP the closures
//! // would reconnect/re-accept after an outage.
//! let mut tx = SupervisedSender::new(
//!     link_tx,
//!     SupervisorConfig::default(),
//!     Box::new(|| Err(TransportError::Closed)),
//! )?;
//! let mut rx = SupervisedReceiver::new(
//!     link_rx,
//!     SupervisorConfig::default(),
//!     Box::new(|| Ok(None)),
//! );
//!
//! let payload: Vec<u8> = (0..96).map(|i| i as u8).collect();
//! tx.link_mut().transmitter_mut().enqueue_with(Mcs::Qam16R12, &payload)?;
//!
//! let mut decoded = Vec::new();
//! for tick in 1..=200u32 {                  // logical clock drives liveness
//!     let now = Duration::from_millis(tick as u64);
//!     tx.step(now)?;
//!     while let Some(ev) = rx.step(now)? {
//!         if let LinkEvent::Burst(b) = ev {
//!             decoded.push(b.result.payload);
//!         }
//!     }
//!     if tx.link().is_idle() && !decoded.is_empty() {
//!         break;
//!     }
//! }
//! assert_eq!(decoded, vec![payload]);
//! assert!(tx.link().is_established());     // HELLO/RESET completed
//! # Ok(())
//! # }
//! ```
//!
//! ## Cargo features
//!
//! * `parallel` (default) — fan the four spatial channels out across
//!   scoped threads; serial builds stay bit-identical.
//! * `simd` (default) — 8-lane SIMD tier of the butterfly Viterbi ACS
//!   kernel (AVX2 behind runtime CPU detection, a portable-array tier
//!   elsewhere), decode-for-decode bit-identical to the scalar and
//!   butterfly kernels. Disable it (or enable the coding crate's
//!   `scalar-kernel`) to pin the dispatch for differential runs; the
//!   bitsliced many-burst batch decoder is always available.
pub use mimo_fixed as fixed;

/// CORDIC rotation/vectoring engines with the paper's 20-cycle pipeline.
pub use mimo_cordic as cordic;

/// Fixed-point FFT/IFFT plus the float reference transform.
pub use mimo_fft as fft;

/// Convolutional encoder, puncturing, Viterbi decoder, scrambler.
pub use mimo_coding as coding;

/// 802.11a block interleaver / deinterleaver with ping-pong memories.
pub use mimo_interleave as interleave;

/// Symbol mapper / demapper (BPSK … 64-QAM, hard and soft).
pub use mimo_modem as modem;

/// OFDM framing: subcarrier maps, cyclic prefix, STS/LTS, preamble.
pub use mimo_ofdm as ofdm;

/// Time synchroniser (32-tap correlator + CORDIC magnitude).
pub use mimo_sync as sync;

/// Channel estimation: CORDIC systolic QRD, R-inverse, H⁻¹ pipeline.
pub use mimo_chanest as chanest;

/// MIMO zero-forcing detection, pilot phase and timing correction.
pub use mimo_detect as detect;

/// Channel simulator: AWGN, Rayleigh 4×4, CFO, timing offset, ADC.
pub use mimo_channel as channel;

/// FPGA synthesis-resource and timing model (Tables 1–4, 1 Gbps).
pub use mimo_fpga as fpga;

/// The transceiver itself: TX/RX chains, burst format, link harness.
pub use mimo_core as phy;

/// Fault-tolerant framed sample transport: chunk codec, carriers,
/// deterministic fault injection, linked streaming endpoints, plus
/// the supervised link layer — credit-based flow control, HELLO/RESET
/// sessions, heartbeat/watchdog liveness and reconnect-with-backoff.
pub use mimo_transport as transport;
